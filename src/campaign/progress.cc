#include "campaign/progress.h"

#include <iostream>
#include <sstream>

#include "support/strings.h"

namespace encore::campaign {

std::string
formatHeartbeatJson(const ProgressSnapshot &snapshot)
{
    constexpr int kNumOutcomes =
        static_cast<int>(fault::FaultOutcome::NumOutcomes);
    std::ostringstream os;
    os << "{\"elapsed_ms\": " << snapshot.elapsed_ms
       << ", \"done\": " << snapshot.done
       << ", \"total\": " << snapshot.total
       << ", \"executed\": " << snapshot.executed
       << ", \"trials_per_sec\": "
       << formatFixed(snapshot.trials_per_sec, 1)
       << ", \"eta_s\": " << formatFixed(snapshot.eta_s, 1)
       << ", \"final\": " << (snapshot.final_sample ? "true" : "false")
       << ", \"counts\": {";
    for (int i = 0; i < kNumOutcomes; ++i) {
        os << '"'
           << fault::outcomeName(static_cast<fault::FaultOutcome>(i))
           << "\": " << snapshot.tally.counts[i]
           << (i + 1 < kNumOutcomes ? ", " : "");
    }
    os << "}}";
    return os.str();
}

ProgressMeter::ProgressMeter(Options options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now())
{
    if (!options_.heartbeat_path.empty()) {
        heartbeat_.open(options_.heartbeat_path,
                        std::ios::out | std::ios::app);
        if (!heartbeat_)
            std::cerr << "warn: cannot open heartbeat file '"
                      << options_.heartbeat_path
                      << "'; continuing without heartbeat\n";
    }
    if (options_.line || heartbeat_.is_open()) {
        ticker_ = std::make_unique<Ticker>(options_.interval, [this] {
            std::lock_guard<std::mutex> lock(emit_mutex_);
            if (!finished_)
                emitLocked(false);
        });
    }
}

ProgressMeter::~ProgressMeter()
{
    finish();
}

void
ProgressMeter::note(fault::FaultOutcome outcome)
{
    counts_[static_cast<int>(outcome)].fetch_add(
        1, std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
}

ProgressSnapshot
ProgressMeter::sample(bool final_sample) const
{
    constexpr int kNumOutcomes =
        static_cast<int>(fault::FaultOutcome::NumOutcomes);
    ProgressSnapshot snapshot;
    snapshot.executed = executed_.load(std::memory_order_relaxed);
    snapshot.done = options_.initial.trials + snapshot.executed;
    snapshot.total = options_.total;
    snapshot.final_sample = final_sample;
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_)
            .count();
    snapshot.elapsed_ms =
        static_cast<std::uint64_t>(elapsed * 1000.0);
    snapshot.trials_per_sec =
        elapsed > 0.0
            ? static_cast<double>(snapshot.executed) / elapsed
            : 0.0;
    const std::uint64_t remaining =
        snapshot.total > snapshot.done ? snapshot.total - snapshot.done
                                       : 0;
    snapshot.eta_s = snapshot.trials_per_sec > 0.0
                         ? static_cast<double>(remaining) /
                               snapshot.trials_per_sec
                         : 0.0;
    snapshot.tally = options_.initial;
    for (int i = 0; i < kNumOutcomes; ++i)
        snapshot.tally.counts[i] +=
            counts_[i].load(std::memory_order_relaxed);
    snapshot.tally.trials = snapshot.done;
    return snapshot;
}

bool
ProgressMeter::finish()
{
    if (ticker_)
        ticker_->stop();
    std::lock_guard<std::mutex> lock(emit_mutex_);
    if (!finished_) {
        finished_ = true;
        // One final sample so the last line / heartbeat entry reflects
        // the completed state; the progress line gains its newline
        // here.
        if (options_.line || heartbeat_.is_open())
            emitLocked(true);
    }
    return !heartbeat_degraded_;
}

void
ProgressMeter::emitLocked(bool final)
{
    const ProgressSnapshot snapshot = sample(final);

    if (options_.line) {
        std::cerr << '\r' << options_.label << ' ' << snapshot.done
                  << '/' << snapshot.total << " trials";
        if (snapshot.total > 0)
            std::cerr << " ("
                      << formatPercent(
                             static_cast<double>(snapshot.done) /
                             static_cast<double>(snapshot.total))
                      << ')';
        std::cerr << " | " << formatFixed(snapshot.trials_per_sec, 0)
                  << " trials/s";
        if (snapshot.done < snapshot.total &&
            snapshot.trials_per_sec > 0.0)
            std::cerr << " | ETA " << formatFixed(snapshot.eta_s, 1)
                      << "s";
        if (snapshot.done > 0)
            std::cerr << " | covered "
                      << formatPercent(
                             snapshot.tally.coveredFraction());
        std::cerr << "   " << (final ? "\n" : "") << std::flush;
    }

    if (heartbeat_.is_open()) {
        heartbeat_ << formatHeartbeatJson(snapshot) << "\n"
                   << std::flush;
        // An ofstream failbit is sticky: after the first failed
        // append (disk full, directory deleted) every later << is a
        // silent no-op while the run looks healthy. Catch the first
        // failure, say so once, and stop pretending to heartbeat.
        if (!heartbeat_) {
            heartbeat_degraded_ = true;
            heartbeat_.close();
            std::cerr << "warn: heartbeat append to '"
                      << options_.heartbeat_path
                      << "' failed (disk full or path removed); "
                         "heartbeat disabled for the rest of the run\n";
        }
    }
}

} // namespace encore::campaign
