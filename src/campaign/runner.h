/**
 * @file
 * Resumable, sharded campaign runner — orchestration over
 * FaultInjector and the durable trial store.
 *
 * Because every trial is a pure function of (module, golden run,
 * campaign seed, trial index) — the counter-based seeding contract of
 * Rng::forStream — a campaign is just the set of trial indices
 * [0, trials). The runner exploits that three ways:
 *
 *  - **Resume.** On startup it reads the store's valid prefix,
 *    recomputes which indices are missing, and re-shards only those
 *    across the thread pool. A campaign killed at trial 99,999 of
 *    100,000 re-executes one trial; the aggregate is bit-identical to
 *    an uninterrupted run because per-outcome counts are
 *    order-independent sums of per-trial outcomes that never change.
 *
 *  - **Multi-process sharding.** Shard i of N owns the indices with
 *    `t % N == i` (stride partitioning keeps shard workloads
 *    statistically even). N processes — or machines — write disjoint
 *    stores; mergeTrialStores() later combines them into the same
 *    aggregate a single unsharded run would have produced.
 *
 *  - **Identity checking.** The store header carries a fingerprint of
 *    everything that determines trial outcomes (module hash, entry,
 *    args, seed, trials, Dmax, run budget, masking). Resume and merge
 *    refuse a store whose fingerprint does not match instead of
 *    silently mixing trials from different experiments.
 *
 * The runner validates its CampaignConfig on entry
 * (fault::validateCampaignConfig) and exits through
 * support/diagnostics fatal() — with a diagnostic naming the
 * offending field or store — on misconfiguration.
 */
#ifndef ENCORE_CAMPAIGN_RUNNER_H
#define ENCORE_CAMPAIGN_RUNNER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "campaign/trial_store.h"
#include "fault/injector.h"

namespace encore::campaign {

struct ShardSpec
{
    std::uint32_t index = 0;
    std::uint32_t count = 1;

    /// Does this shard own trial index `t`?
    bool owns(std::uint64_t t) const { return t % count == index; }

    /// Number of owned indices in [0, trials).
    std::uint64_t
    ownedTrials(std::uint64_t trials) const
    {
        return trials / count + (trials % count > index ? 1 : 0);
    }
};

/// Parses "i/N" (e.g. "0/4"). Returns nullopt on malformed input,
/// i >= N, or N == 0.
std::optional<ShardSpec> parseShardSpec(const std::string &text);

/// Fatal unless `found` matches `want` on every campaign-identity
/// field (snapshot provenance deliberately excluded), naming each
/// mismatched field in the diagnostic. Shared by `resume` and the
/// campaign service's store-adoption path.
void requireHeaderMatches(const StoreHeader &want,
                          const StoreHeader &found,
                          const std::string &path);

struct RunnerOptions
{
    /// Trial store path; "" runs without durability (still sharded,
    /// still validated, still reported — just not resumable).
    std::string store_path;
    ShardSpec shard;
    /// When the store already exists, require/forbid that: `resume`
    /// passes MustExist, a fresh `run` may pass either.
    enum class StorePolicy { CreateOrResume, MustExist };
    StorePolicy store_policy = StorePolicy::CreateOrResume;
    /// Test/ops hook: execute at most this many *new* trials, then
    /// stop (summary.complete == false), simulating an interrupted
    /// campaign deterministically. 0 = run to completion.
    std::uint64_t stop_after = 0;
    TrialStoreWriter::Options store;
    /// Progress/telemetry (see campaign/progress.h).
    bool progress = false;
    std::string heartbeat_path;
    std::chrono::milliseconds progress_interval{500};
    /// Label shown in the progress line; defaults to the store path.
    std::string label;
};

struct RunSummary
{
    /// Aggregate over every trial recorded for this shard (resumed +
    /// executed). For shard 0/1 of a complete run this is exactly
    /// what FaultInjector::runCampaign would have returned.
    fault::CampaignResult result;
    /// Indices this shard owns.
    std::uint64_t shard_trials = 0;
    /// Trials recovered from the store instead of re-executed.
    std::uint64_t resumed = 0;
    /// Trials executed by this invocation.
    std::uint64_t executed = 0;
    /// Every owned index is recorded.
    bool complete = false;
    /// Torn/corrupt bytes the store reader dropped (0 normally).
    std::uint64_t recovered_dropped_bytes = 0;
};

/// The shared campaign execution core: executes an explicit list of
/// trial indices across `config.jobs` pooled per-worker interpreters
/// through FaultInjector::runCampaignTrial. Outcomes land at the
/// matching position of `outcomes` (resized by the call), so the
/// result is bit-identical at any job count or schedule. `sink`, when
/// non-null, is invoked from worker threads after each trial (store
/// writes, progress accounting) and must be thread-safe. Both
/// CampaignRunner::run() and the campaign planner execute through
/// this single entry point.
/// The sink's third argument is the trial's auxiliary cost counter
/// (replay cost); `aux_out`, when non-null, is resized alongside
/// `outcomes` and receives it positionally.
void executeTrialList(
    const fault::FaultInjector &injector,
    const fault::CampaignConfig &config,
    const std::vector<std::uint64_t> &trials,
    std::vector<std::uint8_t> &outcomes,
    const std::function<void(std::uint64_t, fault::FaultOutcome,
                             std::uint32_t)> &sink = {},
    std::vector<std::uint32_t> *aux_out = nullptr);

/// Fingerprint of everything that determines trial outcomes: module
/// hash, entry, args, seed, trials, Dmax, run budget factor, masking
/// rate, masking model. Deliberately excludes `jobs` and the shard
/// spec — neither may change results.
std::uint64_t campaignFingerprint(const fault::FaultInjector &injector,
                                  const fault::CampaignConfig &config);

class CampaignRunner
{
  public:
    /// `injector` must already be prepare()d.
    CampaignRunner(const fault::FaultInjector &injector,
                   const fault::CampaignConfig &config,
                   RunnerOptions options = {});

    /// Runs (or resumes) this shard of the campaign. Fatal on invalid
    /// config, unusable store, or store/config identity mismatch.
    RunSummary run();

    /// The header a store written by this runner carries.
    StoreHeader header() const;

  private:
    const fault::FaultInjector &injector_;
    fault::CampaignConfig config_;
    RunnerOptions options_;
};

struct MergeSummary
{
    /// Aggregate across all shards — bit-identical to the unsharded
    /// campaign's CampaignResult.
    fault::CampaignResult result;
    /// The common campaign identity of the merged stores.
    StoreHeader header;
    std::uint64_t stores_merged = 0;
};

/// Combines shard stores into one aggregate. Returns nullopt on
/// success; otherwise a diagnostic explaining the refusal: unreadable
/// store, mismatched config fingerprint / module hash / shard count,
/// duplicate shard index, a record owned by the wrong shard, or an
/// incomplete campaign (missing trials are listed by count).
std::optional<std::string>
mergeTrialStores(const std::vector<std::string> &paths,
                 MergeSummary &out);

/// Renders a CampaignResult as the canonical aggregate table (one row
/// per outcome: count + fraction, then the covered line, then — only
/// when non-zero — the replay-cost line). Byte-equal output is the
/// determinism criterion used by tests and the CLI.
std::string formatAggregate(const fault::CampaignResult &result);

} // namespace encore::campaign

#endif // ENCORE_CAMPAIGN_RUNNER_H
