#include "campaign/trial_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "support/checksum.h"

namespace encore::campaign {

namespace {

constexpr char kMagic[8] = {'E', 'N', 'C', 'T', 'R', 'I', 'A', 'L'};

template <typename T>
void
put(char *bytes, std::size_t offset, T value)
{
    std::memcpy(bytes + offset, &value, sizeof value);
}

template <typename T>
T
get(const char *bytes, std::size_t offset)
{
    T value;
    std::memcpy(&value, bytes + offset, sizeof value);
    return value;
}

void
encodeHeader(char (&bytes)[kTrialStoreHeaderSize],
             const StoreHeader &header)
{
    std::memset(bytes, 0, sizeof bytes);
    std::memcpy(bytes, kMagic, sizeof kMagic);
    put<std::uint32_t>(bytes, 8, kTrialStoreVersion);
    put<std::uint32_t>(bytes, 12,
                       static_cast<std::uint32_t>(kTrialRecordSize));
    put<std::uint64_t>(bytes, 16, header.config_fingerprint);
    put<std::uint64_t>(bytes, 24, header.module_hash);
    put<std::uint64_t>(bytes, 32, header.seed);
    put<std::uint64_t>(bytes, 40, header.total_trials);
    put<std::uint32_t>(bytes, 48, header.shard_index);
    put<std::uint32_t>(bytes, 52, header.shard_count);
    put<std::uint64_t>(bytes, 56, header.snapshot_stride);
    put<std::uint64_t>(bytes, 64, header.snapshot_byte_budget);
    put<std::uint32_t>(bytes, 72, header.snapshot_page_bytes);
    put<std::uint32_t>(bytes, 76, header.fault_model_id);
    put<std::uint32_t>(bytes, 80, header.detector_id);
    put<std::uint32_t>(bytes, 84, crc32(bytes, 84));
}

void
encodeRecord(char (&bytes)[kTrialRecordSize], std::uint64_t trial,
             std::uint32_t outcome, std::uint32_t aux)
{
    put<std::uint64_t>(bytes, 0, trial);
    put<std::uint32_t>(bytes, 8, outcome);
    put<std::uint32_t>(bytes, 12, aux);
    put<std::uint32_t>(bytes, 16, crc32(bytes, 16));
}

} // namespace

std::optional<std::string>
readTrialStore(const std::string &path, StoreContents &out)
{
    out = StoreContents{};
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "cannot open trial store '" + path + "' for reading";

    char header_bytes[kTrialStoreHeaderSize];
    in.read(header_bytes, sizeof header_bytes);
    if (in.gcount() != static_cast<std::streamsize>(sizeof header_bytes))
        return "trial store '" + path +
               "' is shorter than a store header — not a trial store "
               "(or the very first write was torn)";
    if (std::memcmp(header_bytes, kMagic, sizeof kMagic) != 0)
        return "'" + path + "' is not a trial store (bad magic)";
    const auto version = get<std::uint32_t>(header_bytes, 8);
    if (version != kTrialStoreVersion)
        return "trial store '" + path + "' has format version " +
               std::to_string(version) + "; this build reads version " +
               std::to_string(kTrialStoreVersion);
    const auto record_size = get<std::uint32_t>(header_bytes, 12);
    if (record_size != kTrialRecordSize)
        return "trial store '" + path + "' declares " +
               std::to_string(record_size) + "-byte records, expected " +
               std::to_string(kTrialRecordSize);
    if (get<std::uint32_t>(header_bytes, 84) != crc32(header_bytes, 84))
        return "trial store '" + path + "' has a corrupt header (CRC "
               "mismatch)";

    out.header.config_fingerprint =
        get<std::uint64_t>(header_bytes, 16);
    out.header.module_hash = get<std::uint64_t>(header_bytes, 24);
    out.header.seed = get<std::uint64_t>(header_bytes, 32);
    out.header.total_trials = get<std::uint64_t>(header_bytes, 40);
    out.header.shard_index = get<std::uint32_t>(header_bytes, 48);
    out.header.shard_count = get<std::uint32_t>(header_bytes, 52);
    out.header.snapshot_stride = get<std::uint64_t>(header_bytes, 56);
    out.header.snapshot_byte_budget =
        get<std::uint64_t>(header_bytes, 64);
    out.header.snapshot_page_bytes =
        get<std::uint32_t>(header_bytes, 72);
    out.header.fault_model_id = get<std::uint32_t>(header_bytes, 76);
    out.header.detector_id = get<std::uint32_t>(header_bytes, 80);
    out.valid_bytes = kTrialStoreHeaderSize;

    // Records: accept the longest prefix of whole, CRC-clean records
    // whose trial index is in range; everything after the first bad
    // one is a torn tail from an interrupted run.
    char record_bytes[kTrialRecordSize];
    for (;;) {
        in.read(record_bytes, sizeof record_bytes);
        const std::streamsize got = in.gcount();
        if (got == 0)
            break;
        if (got != static_cast<std::streamsize>(sizeof record_bytes)) {
            out.dropped_bytes += static_cast<std::uint64_t>(got);
            break;
        }
        const auto stored_crc = get<std::uint32_t>(record_bytes, 16);
        TrialRecord record;
        record.trial = get<std::uint64_t>(record_bytes, 0);
        record.outcome = get<std::uint32_t>(record_bytes, 8);
        record.aux = get<std::uint32_t>(record_bytes, 12);
        if (stored_crc != crc32(record_bytes, 16) ||
            record.trial >= out.header.total_trials) {
            out.dropped_bytes += sizeof record_bytes;
            break;
        }
        out.records.push_back(record);
        out.valid_bytes += sizeof record_bytes;
    }
    // Anything still unread after a bad record is part of the tail.
    if (out.dropped_bytes > 0) {
        in.clear();
        in.seekg(0, std::ios::end);
        const auto end = static_cast<std::uint64_t>(in.tellg());
        if (end > out.valid_bytes)
            out.dropped_bytes = end - out.valid_bytes;
    }
    return std::nullopt;
}

TrialStoreWriter::TrialStoreWriter(std::ofstream out,
                                   const Options &options)
    : out_(std::move(out)),
      batch_bytes_(std::max<std::size_t>(1, options.flush_batch) *
                   kTrialRecordSize)
{
    pending_.reserve(batch_bytes_ + kTrialRecordSize);
    if (options.flush_interval.count() > 0) {
        flusher_ = std::make_unique<Ticker>(
            options.flush_interval, [this] {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!finished_)
                    flushLocked();
            });
    }
}

std::unique_ptr<TrialStoreWriter>
TrialStoreWriter::create(const std::string &path,
                         const StoreHeader &header,
                         const Options &options, std::string *error)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    char bytes[kTrialStoreHeaderSize];
    encodeHeader(bytes, header);
    out.write(bytes, sizeof bytes);
    out.flush();
    if (!out) {
        if (error)
            *error = "cannot create trial store '" + path +
                     "': check that the directory exists and is "
                     "writable";
        return nullptr;
    }
    return std::unique_ptr<TrialStoreWriter>(
        new TrialStoreWriter(std::move(out), options));
}

std::unique_ptr<TrialStoreWriter>
TrialStoreWriter::append(const std::string &path,
                         const StoreContents &contents,
                         const Options &options, std::string *error)
{
    // Cut off the torn tail first so the file never contains a
    // corrupt record in the middle of otherwise valid data.
    std::error_code ec;
    std::filesystem::resize_file(path, contents.valid_bytes, ec);
    if (ec) {
        if (error)
            *error = "cannot truncate trial store '" + path +
                     "' to its valid prefix: " + ec.message();
        return nullptr;
    }
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) {
        if (error)
            *error =
                "cannot open trial store '" + path + "' for append";
        return nullptr;
    }
    return std::unique_ptr<TrialStoreWriter>(
        new TrialStoreWriter(std::move(out), options));
}

TrialStoreWriter::~TrialStoreWriter()
{
    finish();
}

void
TrialStoreWriter::add(std::uint64_t trial, std::uint32_t outcome,
                      std::uint32_t aux)
{
    char bytes[kTrialRecordSize];
    encodeRecord(bytes, trial, outcome, aux);
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.insert(pending_.end(), bytes, bytes + sizeof bytes);
    if (pending_.size() >= batch_bytes_)
        flushLocked();
}

void
TrialStoreWriter::flushLocked()
{
    if (pending_.empty())
        return;
    out_.write(pending_.data(),
               static_cast<std::streamsize>(pending_.size()));
    out_.flush();
    if (!out_)
        failed_ = true;
    pending_.clear();
}

bool
TrialStoreWriter::finish()
{
    // Stop the flusher before taking the lock for the final flush —
    // its callback takes the same mutex.
    if (flusher_)
        flusher_->stop();
    std::lock_guard<std::mutex> lock(mutex_);
    if (!finished_) {
        flushLocked();
        out_.close();
        if (!out_)
            failed_ = true;
        finished_ = true;
    }
    return !failed_;
}

bool
TrialStoreWriter::ok()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !failed_;
}

} // namespace encore::campaign
