#include "campaign/planner.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "campaign/runner.h"
#include "fault/masking.h"
#include "ir/basic_block.h"
#include "ir/module.h"
#include "support/checksum.h"
#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"

namespace encore::campaign {

namespace {

constexpr std::size_t kNumOutcomes = kTallyOutcomeSlots;

/// Trials whose latency window can reach past the golden program end
/// (target + dmax within this slack of the last value index) race
/// detection against program termination, and the race depends on
/// pseudo-op counts *outside* the struck function's closure. They go
/// into per-function "tail" groups whose fingerprint includes the
/// whole instrumented module hash, so they never reuse across
/// configurations. See DESIGN.md §11.
constexpr std::uint64_t kTailSlack = 2;

bool
isCoveredOutcome(fault::FaultOutcome outcome)
{
    return outcome == fault::FaultOutcome::Masked ||
           outcome == fault::FaultOutcome::RecoveredIdempotent ||
           outcome == fault::FaultOutcome::RecoveredCheckpoint ||
           outcome == fault::FaultOutcome::Benign;
}

/**
 * Canonical structural hash of one function of the *instrumented*
 * module: opcode, registers, operands, address expressions, callee
 * names, successor block ids, and pseudo-op region ids remapped to
 * function-local first-use ordinals. The remap is what makes the
 * signature stable across sweep points: region ids are numbered
 * globally in selection order, so flipping one region's selection in
 * function A renumbers every later id module-wide while B's
 * instrumentation is structurally untouched.
 */
std::uint64_t
canonicalFunctionSig(const ir::Function &func)
{
    std::uint64_t h = fnv1a64("encore-func-sig-v1");
    std::unordered_map<ir::RegionId, std::uint64_t> local_ids;
    auto canon_region = [&](ir::RegionId id) -> std::uint64_t {
        if (id == ir::kInvalidRegion)
            return ~0ULL;
        const auto [it, inserted] =
            local_ids.try_emplace(id, local_ids.size());
        return it->second;
    };
    auto mix_operand = [&](const ir::Operand &op) {
        h = fnv1a64Mix(static_cast<std::uint64_t>(op.kind), h);
        h = fnv1a64Mix(op.isReg() ? op.reg : 0, h);
        h = fnv1a64Mix(
            op.isImm() ? static_cast<std::uint64_t>(op.imm) : 0, h);
    };

    h = fnv1a64(func.name(), h);
    for (const auto &block : func.blocks()) {
        h = fnv1a64Mix(0xB10C, h);
        h = fnv1a64Mix(block->id(), h);
        for (const ir::Instruction &inst : block->instructions()) {
            h = fnv1a64Mix(static_cast<std::uint64_t>(inst.opcode()),
                           h);
            h = fnv1a64Mix(inst.hasDest() ? inst.dest()
                                          : ir::kInvalidReg,
                           h);
            mix_operand(inst.a());
            mix_operand(inst.b());
            mix_operand(inst.c());
            const ir::AddrExpr &addr = inst.addr();
            h = fnv1a64Mix(static_cast<std::uint64_t>(addr.base_kind),
                           h);
            h = fnv1a64Mix(addr.object, h);
            h = fnv1a64Mix(addr.base_reg, h);
            mix_operand(addr.offset);
            if (!inst.calleeName().empty())
                h = fnv1a64(inst.calleeName(), h);
            for (const ir::Operand &arg : inst.args())
                mix_operand(arg);
            h = fnv1a64Mix(
                inst.succ0() ? inst.succ0()->id() : ~0ULL, h);
            h = fnv1a64Mix(
                inst.succ1() ? inst.succ1()->id() : ~0ULL, h);
            h = fnv1a64Mix(canon_region(inst.regionId()), h);
        }
    }
    return h;
}

/**
 * Value-index → fault-site attribution via one hooked golden-speed
 * run: counts filterResult callbacks exactly like the trial hooks do,
 * and at each requested index records the innermost executing
 * function and the active region id. Behaviourally a pure
 * pass-through, so the run IS the golden run.
 */
class AttributionHooks : public interp::ExecHooks
{
  public:
    struct Site
    {
        ir::RegionId region = ir::kInvalidRegion;
        const ir::Function *func = nullptr;
    };

    AttributionHooks(interp::Interpreter &interp,
                     const std::vector<std::uint64_t> &targets)
        : interp_(interp), targets_(targets), sites_(targets.size())
    {
    }

    std::uint64_t
    filterResult(const ir::Instruction &inst, std::uint64_t dyn_index,
                 std::uint64_t value) override
    {
        (void)inst;
        (void)dyn_index;
        const std::uint64_t index = value_count_++;
        if (cursor_ < targets_.size() && index == targets_[cursor_]) {
            sites_[cursor_].region = interp_.currentRegionId();
            sites_[cursor_].func = interp_.currentFunction();
            ++cursor_;
        }
        return value;
    }

    const std::vector<Site> &sites() const { return sites_; }
    std::uint64_t valueCount() const { return value_count_; }
    bool complete() const { return cursor_ == targets_.size(); }

  private:
    interp::Interpreter &interp_;
    const std::vector<std::uint64_t> &targets_;
    std::vector<Site> sites_;
    std::uint64_t value_count_ = 0;
    std::size_t cursor_ = 0;
};

enum Stratum
{
    kStratumMasked = 0,
    kStratumIdempotent = 1,
    kStratumCheckpointed = 2,
    kStratumUnprotected = 3,
    kNumStrata = 4,
};

const char *const kStratumNames[kNumStrata] = {
    "masked", "idempotent", "checkpointed", "unprotected"};

} // namespace

TrialDraw
drawCampaignTrial(std::uint64_t trial,
                  const fault::CampaignConfig &config,
                  std::uint64_t golden_value_instrs)
{
    // Mirrors runCampaignTrial + runTrial draw order exactly: masking
    // coin (when modelled), then the model's plan, then the
    // detector's.
    TrialDraw draw;
    Rng rng = Rng::forStream(config.seed, trial);
    if (config.model_masking &&
        fault::MaskingModel(config.masking_rate).isMasked(rng)) {
        draw.masked = true;
        return draw;
    }
    const fault::models::FaultModel &model =
        config.trial.model ? *config.trial.model
                           : *fault::models::defaultFaultModel();
    const fault::models::Detector &detector =
        config.trial.detector ? *config.trial.detector
                              : *fault::models::defaultDetector();
    draw.plan = model.draw(rng, golden_value_instrs);
    draw.detection = detector.draw(rng, config.trial.dmax);
    return draw;
}

struct CampaignPlanner::Impl
{
    const fault::FaultInjector &injector;
    const encore::EncoreReport &report;
    fault::CampaignConfig config;
    PlannerOptions options;

    bool prepared = false;
    std::vector<TrialDraw> draws;
    std::uint64_t masked_count = 0;

    struct Group
    {
        const ir::Function *func = nullptr;
        ir::RegionId region = ir::kInvalidRegion;
        bool tail = false;
        int stratum = kStratumUnprotected;
        std::uint64_t fingerprint = 0;
        std::vector<std::uint64_t> trials;
        std::uint64_t subset_hash = 0;
        bool reused = false;
        std::uint64_t counts[kNumOutcomes] = {};
    };
    std::vector<Group> groups;

    /// Sidecar state (loaded at most once per planner).
    bool sidecar_checked = false;
    TallyContents sidecar;
    std::uint64_t sidecar_dropped = 0;

    Impl(const fault::FaultInjector &injector_,
         const encore::EncoreReport &report_,
         const fault::CampaignConfig &config_, PlannerOptions options_)
        : injector(injector_),
          report(report_),
          config(config_),
          options(std::move(options_))
    {
    }

    const fault::models::FaultModel &
    faultModel() const
    {
        return config.trial.model
                   ? *config.trial.model
                   : *fault::models::defaultFaultModel();
    }

    const fault::models::Detector &
    detectorModel() const
    {
        return config.trial.detector
                   ? *config.trial.detector
                   : *fault::models::defaultDetector();
    }

    const encore::RegionReport *
    regionReport(ir::RegionId id) const
    {
        if (id == ir::kInvalidRegion)
            return nullptr;
        for (const encore::RegionReport &entry : report.regions)
            if (entry.id == id)
                return &entry;
        return nullptr;
    }

    /// Hash of everything shared by every group fingerprint: program
    /// identity (caller key + entry/args + golden-run witnesses) and
    /// the fault-model parameters.
    std::uint64_t
    baseFingerprint() const
    {
        std::uint64_t h = fnv1a64("encore-tally-group-v1");
        h = fnv1a64Mix(options.program_key, h);
        h = fnv1a64(injector.entry(), h);
        h = fnv1a64Mix(injector.args().size(), h);
        for (const std::uint64_t arg : injector.args())
            h = fnv1a64Mix(arg, h);
        h = fnv1a64Mix(config.seed, h);
        h = fnv1a64Mix(config.trials, h);
        h = fnv1a64Mix(config.trial.dmax, h);
        h = fnv1a64(&config.trial.run_budget_factor,
                    sizeof config.trial.run_budget_factor, h);
        h = fnv1a64(&config.masking_rate, sizeof config.masking_rate,
                    h);
        h = fnv1a64Mix(config.model_masking ? 1 : 0, h);
        h = fnv1a64(faultModel().name(), h);
        h = fnv1a64(detectorModel().name(), h);
        h = fnv1a64Mix(injector.golden().value_instrs, h);
        h = fnv1a64Mix(injector.golden().return_value, h);
        return h;
    }

    void
    prepare()
    {
        if (prepared)
            return;
        prepared = true;
        fault::validateCampaignConfig(config);
        const interp::RunResult &golden = injector.golden();
        if (golden.value_instrs == 0)
            fatal("campaign planner: the injector is not prepared "
                  "(no golden run)");

        // 1. Precompute every trial's fault parameters from the seed
        //    stream — no execution needed.
        draws.reserve(config.trials);
        for (std::uint64_t t = 0; t < config.trials; ++t) {
            draws.push_back(
                drawCampaignTrial(t, config, golden.value_instrs));
            if (draws.back().masked)
                ++masked_count;
        }

        // 2. Sorted unique fault sites for the attribution run.
        std::vector<std::uint64_t> targets;
        targets.reserve(draws.size() - masked_count);
        for (const TrialDraw &draw : draws)
            if (!draw.masked)
                targets.push_back(draw.plan.target_value_index);
        std::sort(targets.begin(), targets.end());
        targets.erase(std::unique(targets.begin(), targets.end()),
                      targets.end());

        // 3. Attribution: one hooked golden-speed run maps each site
        //    to (function, region id).
        std::vector<AttributionHooks::Site> sites;
        if (!targets.empty()) {
            interp::Interpreter interp(injector.decodedModule());
            AttributionHooks hooks(interp, targets);
            interp.setHooks(&hooks);
            interp.setCaptureGlobals(false);
            interp.setMaxInstructions(golden.dyn_instrs + 10'000);
            const interp::RunResult run =
                interp.run(injector.entry(), injector.args());
            interp.setHooks(nullptr);
            if (!run.ok() || !hooks.complete() ||
                hooks.valueCount() != golden.value_instrs)
                fatal("campaign planner: attribution run diverged "
                      "from the golden run (internal error)");
            sites = hooks.sites();
        }

        // 4. Per-function instrumentation signatures and call-graph
        //    closures over the instrumented module.
        const ir::Module &module = injector.module();
        std::unordered_map<std::string, const ir::Function *> by_name;
        std::unordered_map<const ir::Function *, std::uint64_t>
            func_sig;
        for (const auto &func : module.functions()) {
            by_name[func->name()] = func.get();
            func_sig[func.get()] = canonicalFunctionSig(*func);
        }
        std::unordered_map<const ir::Function *, std::uint64_t>
            closure_sig;
        for (const auto &entry : func_sig) {
            const ir::Function *root = entry.first;
            // DFS over callee names; cycles terminate via `seen`.
            std::unordered_set<const ir::Function *> seen;
            std::vector<const ir::Function *> stack{root};
            seen.insert(root);
            while (!stack.empty()) {
                const ir::Function *cur = stack.back();
                stack.pop_back();
                for (const auto &block : cur->blocks())
                    for (const ir::Instruction &inst :
                         block->instructions()) {
                        if (inst.calleeName().empty())
                            continue;
                        const auto it =
                            by_name.find(inst.calleeName());
                        if (it == by_name.end() ||
                            seen.count(it->second))
                            continue;
                        seen.insert(it->second);
                        stack.push_back(it->second);
                    }
            }
            // Order-independent combination: sort reachable sigs by
            // function name.
            std::vector<std::pair<std::string, std::uint64_t>>
                members;
            members.reserve(seen.size());
            for (const ir::Function *f : seen)
                members.emplace_back(f->name(), func_sig[f]);
            std::sort(members.begin(), members.end());
            std::uint64_t h = fnv1a64("encore-closure-sig-v1");
            for (const auto &[name, sig] : members) {
                h = fnv1a64(name, h);
                h = fnv1a64Mix(sig, h);
            }
            closure_sig[root] = h;
        }

        // 5. Group construction, in first-encounter order over the
        //    ascending trial index (deterministic).
        struct KeyHash
        {
            std::size_t
            operator()(const std::tuple<const ir::Function *,
                                        ir::RegionId, bool> &k) const
            {
                return std::hash<const void *>()(std::get<0>(k)) ^
                       (static_cast<std::size_t>(std::get<1>(k))
                        << 1) ^
                       (std::get<2>(k) ? 0x9e3779b9u : 0u);
            }
        };
        std::unordered_map<
            std::tuple<const ir::Function *, ir::RegionId, bool>,
            std::size_t, KeyHash>
            index;
        const std::uint64_t base = baseFingerprint();
        for (std::uint64_t t = 0; t < draws.size(); ++t) {
            const TrialDraw &draw = draws[t];
            if (draw.masked)
                continue;
            const auto site_it = std::lower_bound(
                targets.begin(), targets.end(),
                draw.plan.target_value_index);
            const AttributionHooks::Site &site =
                sites[static_cast<std::size_t>(site_it -
                                               targets.begin())];
            if (!site.func)
                fatal("campaign planner: fault site outside any "
                      "function (internal error)");
            const bool tail = draw.plan.target_value_index +
                                      config.trial.dmax + kTailSlack >=
                              golden.value_instrs;
            const auto key =
                std::make_tuple(site.func, site.region, tail);
            auto [it, inserted] =
                index.try_emplace(key, groups.size());
            if (inserted) {
                Group group;
                group.func = site.func;
                group.region = site.region;
                group.tail = tail;
                const encore::RegionReport *rr =
                    regionReport(site.region);
                if (rr) {
                    group.stratum =
                        rr->cls == RegionClass::Idempotent
                            ? kStratumIdempotent
                            : kStratumCheckpointed;
                } else {
                    group.stratum = kStratumUnprotected;
                }
                std::uint64_t h = base;
                h = fnv1a64(site.func->name(), h);
                h = fnv1a64Mix(closure_sig[site.func], h);
                if (rr) {
                    h = fnv1a64(std::string_view("@region"), h);
                    h = fnv1a64Mix(rr->header, h);
                    h = fnv1a64Mix(rr->num_blocks, h);
                } else {
                    h = fnv1a64(std::string_view("@unprotected"), h);
                }
                if (tail) {
                    h = fnv1a64(std::string_view("@tail"), h);
                    h = fnv1a64Mix(injector.moduleHash(), h);
                }
                group.fingerprint = h;
                groups.push_back(std::move(group));
            }
            groups[it->second].trials.push_back(t);
        }
        for (Group &group : groups) {
            std::uint64_t h = fnv1a64("encore-subset-v1");
            h = fnv1a64Mix(group.trials.size(), h);
            for (const std::uint64_t t : group.trials)
                h = fnv1a64Mix(t, h);
            group.subset_hash = h;
        }
    }

    /// Loads (or creates) the sidecar and marks reusable groups. Only
    /// a tally whose key AND subset witness both match folds in; any
    /// fingerprint slip therefore costs re-execution, never wrong
    /// numbers.
    void
    probeSidecar()
    {
        if (options.sidecar_path.empty() || sidecar_checked)
            return;
        // The reuse soundness argument (DESIGN.md §11) attributes a
        // trial to the function containing its anchor value
        // instruction. Non-anchored models strike at the *next*
        // branch/memory op, which may sit in a different function, so
        // the attribution — and with it the group fingerprint — would
        // be unsound.
        if (!faultModel().anchoredStrike())
            fatalf("campaign planner: compositional reuse requires an "
                   "anchored-strike fault model; '",
                   faultModel().name(),
                   "' is not one — rerun without --sidecar");
        // Tally records carry outcome counts only; folding them in
        // would silently drop the reused trials' replay cost.
        if (detectorModel().reportsReplayCost())
            fatalf("campaign planner: tally reuse does not account "
                   "replay cost; the '",
                   detectorModel().name(),
                   "' detector reports it — rerun without --sidecar");
        sidecar_checked = true;
        const std::string &path = options.sidecar_path;
        if (std::filesystem::exists(path)) {
            if (const auto err = readTallyStore(path, sidecar))
                fatal(*err);
            if (sidecar.dropped_bytes > 0)
                warn("tally table '" + path + "': dropped " +
                     std::to_string(sidecar.dropped_bytes) +
                     " torn/corrupt tail bytes; the affected groups "
                     "re-execute");
            sidecar_dropped = sidecar.dropped_bytes;
        } else {
            if (const auto err = createTallyStore(path))
                fatal(*err);
            sidecar.valid_bytes = kTallyStoreHeaderSize;
        }
        const auto latest = latestTallies(sidecar);
        for (Group &group : groups) {
            const auto it = latest.find(group.fingerprint);
            if (it == latest.end() ||
                it->second.subset_hash != group.subset_hash ||
                it->second.subset_count != group.trials.size())
                continue;
            group.reused = true;
            for (std::size_t i = 0; i < kNumOutcomes; ++i)
                group.counts[i] = it->second.counts[i];
        }
    }

    void
    fillPlanShape(PlanSummary &summary) const
    {
        summary.universe = config.trials;
        summary.masked_trials = masked_count;
        summary.groups = groups.size();
        summary.sidecar_dropped_bytes = sidecar_dropped;
        for (const Group &group : groups) {
            GroupSummary detail;
            detail.function = group.func->name();
            detail.protected_region =
                group.region != ir::kInvalidRegion;
            detail.tail = group.tail;
            detail.trials = group.trials.size();
            detail.reused = group.reused;
            summary.group_details.push_back(std::move(detail));
            if (!group.reused)
                continue;
            ++summary.groups_reused;
            summary.reused_trials += group.trials.size();
        }
    }

    /// Per-stratum universes (trial membership counts).
    void
    strataUniverses(std::uint64_t (&universe)[kNumStrata]) const
    {
        universe[kStratumMasked] = masked_count;
        for (const Group &group : groups)
            universe[group.stratum] += group.trials.size();
    }
};

CampaignPlanner::CampaignPlanner(
    const fault::FaultInjector &injector,
    const encore::EncoreReport &report,
    const fault::CampaignConfig &config, PlannerOptions options)
    : impl_(std::make_unique<Impl>(injector, report, config,
                                   std::move(options)))
{
}

CampaignPlanner::~CampaignPlanner() = default;

const std::vector<TrialDraw> &
CampaignPlanner::draws()
{
    impl_->prepare();
    return impl_->draws;
}

std::vector<std::uint64_t>
CampaignPlanner::trialsToExecute()
{
    impl_->prepare();
    impl_->probeSidecar();
    std::vector<std::uint64_t> trials;
    for (const Impl::Group &group : impl_->groups) {
        if (group.reused)
            continue;
        trials.insert(trials.end(), group.trials.begin(),
                      group.trials.end());
    }
    std::sort(trials.begin(), trials.end());
    return trials;
}

fault::CampaignResult
CampaignPlanner::reusedBase()
{
    impl_->prepare();
    impl_->probeSidecar();
    fault::CampaignResult base;
    base.counts[static_cast<int>(fault::FaultOutcome::Masked)] +=
        impl_->masked_count;
    base.trials += impl_->masked_count;
    for (const Impl::Group &group : impl_->groups) {
        if (!group.reused)
            continue;
        for (std::size_t i = 0; i < kNumOutcomes; ++i)
            base.counts[i] += group.counts[i];
        base.trials += group.trials.size();
    }
    return base;
}

std::vector<std::uint8_t>
CampaignPlanner::trialStrata()
{
    impl_->prepare();
    // Masked draws belong to no group; they keep the zero initializer
    // (kStratumMasked) and never reach the lease table anyway.
    std::vector<std::uint8_t> strata(impl_->draws.size(), 0);
    for (const Impl::Group &group : impl_->groups)
        for (const std::uint64_t trial : group.trials)
            strata[trial] = static_cast<std::uint8_t>(group.stratum);
    return strata;
}

PlanSummary
CampaignPlanner::plan()
{
    impl_->prepare();
    impl_->probeSidecar();
    PlanSummary summary;
    impl_->fillPlanShape(summary);
    std::uint64_t universe[kNumStrata] = {};
    impl_->strataUniverses(universe);
    for (int s = 0; s < kNumStrata; ++s) {
        StratumSummary stratum;
        stratum.name = kStratumNames[s];
        stratum.universe = universe[s];
        summary.strata.push_back(std::move(stratum));
    }
    return summary;
}

PlanSummary
CampaignPlanner::run()
{
    impl_->prepare();
    impl_->probeSidecar();

    // Execution set: every trial of every non-reused group, ascending.
    std::vector<std::uint64_t> to_run;
    std::vector<std::uint32_t> group_of;
    for (std::uint32_t g = 0; g < impl_->groups.size(); ++g) {
        const Impl::Group &group = impl_->groups[g];
        if (group.reused)
            continue;
        for (const std::uint64_t t : group.trials) {
            to_run.push_back(t);
            group_of.push_back(g);
        }
    }

    std::vector<std::uint8_t> outcomes;
    std::vector<std::uint32_t> auxs;
    executeTrialList(impl_->injector, impl_->config, to_run, outcomes,
                     {}, &auxs);
    for (std::size_t i = 0; i < to_run.size(); ++i)
        ++impl_->groups[group_of[i]].counts[outcomes[i]];

    PlanSummary summary;
    impl_->fillPlanShape(summary);
    summary.executed = to_run.size();

    // Aggregate: masked draws + every group's tally — tally-identical
    // to the brute-force campaign by construction.
    summary.result
        .counts[static_cast<int>(fault::FaultOutcome::Masked)] +=
        impl_->masked_count;
    std::uint64_t stratum_universe[kNumStrata] = {};
    std::uint64_t stratum_covered[kNumStrata] = {};
    std::uint64_t stratum_sampled[kNumStrata] = {};
    impl_->strataUniverses(stratum_universe);
    stratum_covered[kStratumMasked] = impl_->masked_count;
    for (const Impl::Group &group : impl_->groups) {
        for (std::size_t i = 0; i < kNumOutcomes; ++i) {
            summary.result.counts[i] += group.counts[i];
            if (isCoveredOutcome(static_cast<fault::FaultOutcome>(i)))
                stratum_covered[group.stratum] += group.counts[i];
        }
        if (!group.reused)
            stratum_sampled[group.stratum] += group.trials.size();
    }
    summary.result.trials = impl_->config.trials;
    for (const std::uint32_t aux : auxs)
        summary.result.replay_cost += aux;

    // Persist the freshly executed groups (last-wins append).
    if (!impl_->options.sidecar_path.empty()) {
        std::vector<TallyRecord> records;
        for (const Impl::Group &group : impl_->groups) {
            if (group.reused)
                continue;
            TallyRecord record;
            record.key = group.fingerprint;
            record.subset_hash = group.subset_hash;
            record.subset_count = group.trials.size();
            for (std::size_t i = 0; i < kNumOutcomes; ++i)
                record.counts[i] = group.counts[i];
            records.push_back(record);
        }
        if (!records.empty())
            if (const auto err = appendTallyRecords(
                    impl_->options.sidecar_path, impl_->sidecar,
                    records))
                warn(*err +
                     " (results are unaffected; the next sweep point "
                     "just re-executes these groups)");
    }

    const double z = confidenceZ(impl_->options.confidence);
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < kNumOutcomes; ++i)
        if (isCoveredOutcome(static_cast<fault::FaultOutcome>(i)))
            covered += summary.result.counts[i];
    const Proportion ci =
        wilsonInterval(covered, summary.result.trials, z);
    summary.coverage = ci.estimate;
    summary.low = ci.low;
    summary.high = ci.high;
    summary.ci_half = (ci.high - ci.low) / 2.0;
    summary.ci_met = summary.ci_half <= impl_->options.target_ci;

    for (int s = 0; s < kNumStrata; ++s) {
        StratumSummary stratum;
        stratum.name = kStratumNames[s];
        stratum.universe = stratum_universe[s];
        stratum.sampled = s == kStratumMasked
                              ? 0
                              : stratum_sampled[s];
        stratum.covered = stratum_covered[s];
        if (stratum.universe > 0) {
            stratum.estimate =
                static_cast<double>(stratum.covered) /
                static_cast<double>(stratum.universe);
            stratum.low = stratum.estimate;
            stratum.high = stratum.estimate;
        }
        stratum.exhausted = true; // every trial is accounted for
        summary.strata.push_back(std::move(stratum));
    }
    return summary;
}

PlanSummary
CampaignPlanner::runAdaptive()
{
    impl_->prepare();

    // Per-stratum sorted trial lists (masked trials never execute:
    // their outcome is decided by the coin, an exact zero-variance
    // stratum).
    std::vector<std::uint64_t> members[kNumStrata];
    for (const Impl::Group &group : impl_->groups)
        members[group.stratum].insert(members[group.stratum].end(),
                                      group.trials.begin(),
                                      group.trials.end());
    for (auto &list : members)
        std::sort(list.begin(), list.end());

    const std::uint64_t universe = impl_->config.trials;
    const double z = confidenceZ(impl_->options.confidence);

    std::uint64_t sampled[kNumStrata] = {};
    std::uint64_t covered[kNumStrata] = {};
    std::uint64_t counts[kNumStrata][kNumOutcomes] = {};
    std::uint64_t replay_cost = 0;

    auto execute_round = [&](const std::uint64_t (&add)[kNumStrata]) {
        std::vector<std::uint64_t> trials;
        std::vector<int> stratum_of;
        for (int s = kStratumIdempotent; s < kNumStrata; ++s)
            for (std::uint64_t i = 0; i < add[s]; ++i) {
                trials.push_back(members[s][sampled[s] + i]);
                stratum_of.push_back(s);
            }
        std::vector<std::uint8_t> outcomes;
        std::vector<std::uint32_t> auxs;
        executeTrialList(impl_->injector, impl_->config, trials,
                         outcomes, {}, &auxs);
        for (const std::uint32_t aux : auxs)
            replay_cost += aux;
        for (std::size_t i = 0; i < trials.size(); ++i) {
            const int s = stratum_of[i];
            ++counts[s][outcomes[i]];
            if (isCoveredOutcome(
                    static_cast<fault::FaultOutcome>(outcomes[i])))
                ++covered[s];
        }
        for (int s = kStratumIdempotent; s < kNumStrata; ++s)
            sampled[s] += add[s];
    };

    // Pilot round: seed every non-empty stratum's variance estimate.
    {
        std::uint64_t add[kNumStrata] = {};
        for (int s = kStratumIdempotent; s < kNumStrata; ++s)
            add[s] = std::min<std::uint64_t>(impl_->options.pilot,
                                             members[s].size());
        execute_round(add);
    }

    double coverage = 0.0;
    double half = 1.0;
    bool ci_met = false;
    for (;;) {
        // Stratified estimate and combined interval. The masked
        // stratum contributes weight * 1.0 with zero standard error
        // (its outcome is exact by construction); a fully sampled
        // stratum likewise has no sampling error left.
        coverage = 0.0;
        double var = 0.0;
        bool all_exhausted = true;
        for (int s = 0; s < kNumStrata; ++s) {
            const std::uint64_t size = s == kStratumMasked
                                           ? impl_->masked_count
                                           : members[s].size();
            if (size == 0)
                continue;
            const double weight =
                static_cast<double>(size) /
                static_cast<double>(universe);
            double estimate;
            double se;
            if (s == kStratumMasked) {
                estimate = 1.0;
                se = 0.0;
            } else if (sampled[s] == size) {
                estimate = static_cast<double>(covered[s]) /
                           static_cast<double>(size);
                se = 0.0;
            } else if (sampled[s] == 0) {
                estimate = 0.5;
                se = 0.5;
                all_exhausted = false;
            } else {
                const Proportion p =
                    wilsonInterval(covered[s], sampled[s], z);
                estimate = static_cast<double>(covered[s]) /
                           static_cast<double>(sampled[s]);
                se = (p.high - p.low) / (2.0 * z);
                all_exhausted = false;
            }
            coverage += weight * estimate;
            var += weight * weight * se * se;
        }
        half = z * std::sqrt(var);
        ci_met = half <= impl_->options.target_ci;
        if (ci_met || all_exhausted)
            break;

        // Neyman allocation of the next round where the variance is.
        std::vector<NeymanStratum> strata(kNumStrata);
        for (int s = 0; s < kNumStrata; ++s) {
            if (s == kStratumMasked) {
                strata[s].size = impl_->masked_count;
                strata[s].sampled = impl_->masked_count;
                continue;
            }
            strata[s].size = members[s].size();
            strata[s].sampled = sampled[s];
            // Wilson-centred proportion: never exactly 0 or 1 for a
            // partially sampled stratum, so no stratum starves on an
            // all-one-outcome pilot.
            const double n = static_cast<double>(sampled[s]);
            const double centre =
                (static_cast<double>(covered[s]) + z * z / 2.0) /
                (n + z * z);
            strata[s].stddev = std::sqrt(centre * (1.0 - centre));
        }
        const std::vector<std::uint64_t> alloc =
            neymanAllocation(strata, impl_->options.round);
        std::uint64_t add[kNumStrata] = {};
        std::uint64_t total = 0;
        for (int s = kStratumIdempotent; s < kNumStrata; ++s) {
            add[s] = alloc[s];
            total += alloc[s];
        }
        if (total == 0)
            break;
        execute_round(add);
    }

    PlanSummary summary;
    impl_->fillPlanShape(summary);
    summary.groups_reused = 0;
    summary.reused_trials = 0;
    summary.adaptive = true;
    summary.coverage = coverage;
    summary.ci_half = half;
    summary.low = std::max(0.0, coverage - half);
    summary.high = std::min(1.0, coverage + half);
    summary.ci_met = ci_met;

    summary.result
        .counts[static_cast<int>(fault::FaultOutcome::Masked)] +=
        impl_->masked_count;
    summary.result.trials += impl_->masked_count;
    for (int s = kStratumIdempotent; s < kNumStrata; ++s) {
        for (std::size_t i = 0; i < kNumOutcomes; ++i)
            summary.result.counts[i] += counts[s][i];
        summary.result.trials += sampled[s];
        summary.executed += sampled[s];
    }
    summary.result.replay_cost = replay_cost;

    for (int s = 0; s < kNumStrata; ++s) {
        StratumSummary stratum;
        stratum.name = kStratumNames[s];
        stratum.universe = s == kStratumMasked ? impl_->masked_count
                                               : members[s].size();
        stratum.sampled = s == kStratumMasked ? 0 : sampled[s];
        stratum.covered =
            s == kStratumMasked ? impl_->masked_count : covered[s];
        if (s == kStratumMasked) {
            stratum.estimate = stratum.universe > 0 ? 1.0 : 0.0;
            stratum.low = stratum.estimate;
            stratum.high = stratum.estimate;
            stratum.exhausted = true;
        } else if (stratum.universe == 0) {
            stratum.exhausted = true;
        } else if (stratum.sampled == stratum.universe) {
            stratum.estimate =
                static_cast<double>(stratum.covered) /
                static_cast<double>(stratum.universe);
            stratum.low = stratum.estimate;
            stratum.high = stratum.estimate;
            stratum.exhausted = true;
        } else if (stratum.sampled > 0) {
            const Proportion p =
                wilsonInterval(stratum.covered, stratum.sampled, z);
            stratum.estimate = p.estimate;
            stratum.low = p.low;
            stratum.high = p.high;
        }
        summary.strata.push_back(std::move(stratum));
    }
    return summary;
}

std::string
formatPlanSummary(const PlanSummary &summary)
{
    std::ostringstream os;
    os << (summary.adaptive ? "adaptive" : "planned")
       << " campaign: universe " << summary.universe
       << " trials (masked " << summary.masked_trials
       << ", injectable "
       << summary.universe - summary.masked_trials << ")\n";
    os << "groups " << summary.groups << " (reused "
       << summary.groups_reused << " -> " << summary.reused_trials
       << " trials folded), executed " << summary.executed << "\n";
    os << "coverage " << formatPercent(summary.coverage, 2) << " +- "
       << formatPercent(summary.ci_half, 2) << " ["
       << formatPercent(summary.low, 2) << ", "
       << formatPercent(summary.high, 2) << "]";
    if (summary.adaptive)
        os << (summary.ci_met ? " (target met)"
                              : " (target not met)");
    os << "\n";
    for (const StratumSummary &stratum : summary.strata) {
        os << "stratum " << stratum.name << ": universe "
           << stratum.universe << " sampled " << stratum.sampled
           << " covered " << stratum.covered << " estimate "
           << formatPercent(stratum.estimate, 2) << " ["
           << formatPercent(stratum.low, 2) << ", "
           << formatPercent(stratum.high, 2) << "]"
           << (stratum.exhausted ? " exact" : "") << "\n";
    }
    return os.str();
}

} // namespace encore::campaign
