#include "analysis/memloc.h"

#include <algorithm>
#include <sstream>

#include "support/diagnostics.h"

namespace encore::analysis {

MemLoc
MemLoc::anywhere()
{
    MemLoc loc;
    loc.unknown_base = true;
    return loc;
}

MemLoc
MemLoc::exact(ir::ObjectId object, std::int64_t offset)
{
    MemLoc loc;
    loc.bases = {object};
    loc.exact_offset = true;
    loc.offset = offset;
    return loc;
}

MemLoc
MemLoc::object(ir::ObjectId object)
{
    MemLoc loc;
    loc.bases = {object};
    return loc;
}

MemLoc
MemLoc::objects(std::vector<ir::ObjectId> bases)
{
    ENCORE_ASSERT(!bases.empty(), "objects() requires at least one base");
    MemLoc loc;
    std::sort(bases.begin(), bases.end());
    bases.erase(std::unique(bases.begin(), bases.end()), bases.end());
    loc.bases = std::move(bases);
    return loc;
}

bool
MemLoc::operator==(const MemLoc &other) const
{
    return unknown_base == other.unknown_base && bases == other.bases &&
           exact_offset == other.exact_offset &&
           (!exact_offset || offset == other.offset);
}

std::string
MemLoc::toString(const ir::Module *module) const
{
    if (unknown_base)
        return "<anywhere>";
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < bases.size(); ++i) {
        if (i)
            os << ",";
        if (module)
            os << module->object(bases[i]).name;
        else
            os << "obj" << bases[i];
    }
    os << "}";
    if (exact_offset)
        os << "+" << offset;
    else
        os << "+?";
    return os.str();
}

bool
mayAlias(const MemLoc &a, const MemLoc &b)
{
    if (a.unknown_base || b.unknown_base)
        return true;
    // Base sets must intersect (both are sorted).
    bool bases_intersect = false;
    std::size_t i = 0, j = 0;
    while (i < a.bases.size() && j < b.bases.size()) {
        if (a.bases[i] == b.bases[j]) {
            bases_intersect = true;
            break;
        }
        if (a.bases[i] < b.bases[j])
            ++i;
        else
            ++j;
    }
    if (!bases_intersect)
        return false;
    // Accesses are one word wide, so two known offsets collide only when
    // equal — regardless of which candidate base object is the real one.
    if (a.exact_offset && b.exact_offset && a.offset != b.offset)
        return false;
    return true;
}

bool
mustAlias(const MemLoc &a, const MemLoc &b)
{
    return a.isExact() && b.isExact() && a.bases[0] == b.bases[0] &&
           a.offset == b.offset;
}

void
LocationSet::add(LocEntry entry)
{
    for (const LocEntry &existing : entries_) {
        if (existing == entry)
            return;
    }
    entries_.push_back(std::move(entry));
}

bool
LocationSet::unionWith(const LocationSet &other)
{
    bool changed = false;
    for (const LocEntry &entry : other.entries_) {
        const std::size_t before = entries_.size();
        add(entry);
        changed |= entries_.size() != before;
    }
    return changed;
}

void
GuardSet::insert(const MemLoc &loc)
{
    if (loc.isExact())
        pairs_.insert({loc.bases[0], loc.offset});
}

void
GuardSet::intersectWith(const GuardSet &other)
{
    for (auto it = pairs_.begin(); it != pairs_.end();) {
        if (other.pairs_.count(*it) == 0)
            it = pairs_.erase(it);
        else
            ++it;
    }
}

void
GuardSet::unionWith(const GuardSet &other)
{
    pairs_.insert(other.pairs_.begin(), other.pairs_.end());
}

bool
GuardSet::covers(const MemLoc &loc) const
{
    return loc.isExact() && pairs_.count({loc.bases[0], loc.offset}) > 0;
}

} // namespace encore::analysis
