#include "analysis/liveness.h"

namespace encore::analysis {

bool
RegSet::unionWith(const RegSet &other)
{
    bool changed = false;
    for (std::size_t i = 0; i < bits_.size() && i < other.bits_.size();
         ++i) {
        if (other.bits_[i] && !bits_[i]) {
            bits_[i] = true;
            changed = true;
        }
    }
    return changed;
}

std::vector<ir::RegId>
RegSet::toVector() const
{
    std::vector<ir::RegId> regs;
    for (std::size_t i = 0; i < bits_.size(); ++i) {
        if (bits_[i])
            regs.push_back(static_cast<ir::RegId>(i));
    }
    return regs;
}

std::vector<ir::RegId>
instructionUses(const ir::Instruction &inst)
{
    std::vector<ir::RegId> uses;
    for (const ir::Operand &op : inst.usedOperands()) {
        if (op.isReg())
            uses.push_back(op.reg);
    }
    if (ir::opcodeHasAddress(inst.opcode())) {
        const ir::AddrExpr &addr = inst.addr();
        if (addr.isRegBase())
            uses.push_back(addr.base_reg);
        if (addr.offset.isReg())
            uses.push_back(addr.offset.reg);
    }
    for (const ir::Operand &arg : inst.args()) {
        if (arg.isReg())
            uses.push_back(arg.reg);
    }
    return uses;
}

ir::RegId
instructionDef(const ir::Instruction &inst)
{
    return inst.hasDest() ? inst.dest() : ir::kInvalidReg;
}

Liveness::Liveness(const ir::Function &func)
{
    const std::size_t num_blocks = func.numBlocks();
    const std::size_t num_regs = func.numRegs();
    use_.assign(num_blocks, RegSet(num_regs));
    def_.assign(num_blocks, RegSet(num_regs));
    live_in_.assign(num_blocks, RegSet(num_regs));
    live_out_.assign(num_blocks, RegSet(num_regs));

    for (const auto &bb : func.blocks()) {
        RegSet &use = use_[bb->id()];
        RegSet &def = def_[bb->id()];
        for (const auto &inst : bb->instructions()) {
            for (const ir::RegId reg : instructionUses(inst)) {
                if (!def.test(reg))
                    use.set(reg);
            }
            const ir::RegId dest = instructionDef(inst);
            if (dest != ir::kInvalidReg)
                def.set(dest);
        }
    }

    // Backward fixpoint: liveOut = U succ liveIn; liveIn = use U
    // (liveOut - def).
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = num_blocks; i-- > 0;) {
            const ir::BasicBlock *bb = func.blockById(
                static_cast<ir::BlockId>(i));
            RegSet &out = live_out_[i];
            for (const ir::BasicBlock *succ : bb->successors())
                changed |= out.unionWith(live_in_[succ->id()]);

            RegSet in = use_[i];
            for (std::size_t r = 0; r < out.size(); ++r) {
                if (out.test(static_cast<ir::RegId>(r)) &&
                    !def_[i].test(static_cast<ir::RegId>(r)))
                    in.set(static_cast<ir::RegId>(r));
            }
            changed |= live_in_[i].unionWith(in);
        }
    }
}

} // namespace encore::analysis
