/**
 * @file
 * A small directed-graph value type used by the CFG analyses.
 *
 * Interval partitioning (§3.3 of the paper) is applied *recursively*: the
 * intervals of the CFG form a derived graph whose intervals form another
 * derived graph, and so on. Expressing the algorithms over a plain
 * index-based digraph lets the same code run on the block-level CFG and
 * on every derived level.
 */
#ifndef ENCORE_ANALYSIS_DIGRAPH_H
#define ENCORE_ANALYSIS_DIGRAPH_H

#include <cstdint>
#include <vector>

#include "ir/function.h"

namespace encore::analysis {

using NodeId = std::uint32_t;

class DiGraph
{
  public:
    explicit DiGraph(std::size_t num_nodes)
        : succs_(num_nodes), preds_(num_nodes)
    {
    }

    std::size_t numNodes() const { return succs_.size(); }

    /// Adds a directed edge; parallel edges are collapsed.
    void addEdge(NodeId from, NodeId to);

    const std::vector<NodeId> &succs(NodeId n) const { return succs_[n]; }
    const std::vector<NodeId> &preds(NodeId n) const { return preds_[n]; }

    /// Nodes in depth-first post-order from `entry`. Unreachable nodes
    /// are omitted.
    std::vector<NodeId> postOrder(NodeId entry) const;

    /// Reverse post-order from `entry` (a topological order for DAGs).
    std::vector<NodeId> reversePostOrder(NodeId entry) const;

    /// True if the subgraph reachable from `entry` contains a cycle.
    bool hasCycle(NodeId entry) const;

  private:
    std::vector<std::vector<NodeId>> succs_;
    std::vector<std::vector<NodeId>> preds_;
};

/// Builds the block-level CFG of a function (node ids == block ids).
DiGraph buildCfg(const ir::Function &func);

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_DIGRAPH_H
