/**
 * @file
 * Abstract memory locations and the set algebra behind Equations 1–4.
 *
 * The paper's reachable-store (RS), guarded-address (GA) and exposed-
 * address (EA) sets are sets of *addresses* compared under a static
 * alias analysis. Here an abstract location (MemLoc) is a set of
 * possible base objects plus an optionally-known constant offset:
 *
 *   - may-alias:  base sets intersect (or either is unknown) and the
 *                 offsets are compatible;
 *   - must-alias: both resolve to the same single object at the same
 *                 known offset.
 *
 * GA membership requires must-level knowledge, so GA is kept as a set of
 * exact (object, offset) pairs (GuardSet); RS and EA are LocationSets
 * whose entries remember the originating instruction — that is how the
 * analysis reports *which* store needs a checkpoint (the CP set).
 */
#ifndef ENCORE_ANALYSIS_MEMLOC_H
#define ENCORE_ANALYSIS_MEMLOC_H

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ir/module.h"

namespace encore::analysis {

struct MemLoc
{
    /// May reference any object (failed points-to).
    bool unknown_base = false;
    /// Candidate base objects, sorted; meaningful when !unknown_base.
    std::vector<ir::ObjectId> bases;
    /// True when the word offset is a compile-time constant.
    bool exact_offset = false;
    std::int64_t offset = 0;

    static MemLoc anywhere();
    static MemLoc exact(ir::ObjectId object, std::int64_t offset);
    static MemLoc object(ir::ObjectId object);
    static MemLoc objects(std::vector<ir::ObjectId> bases);

    /// Single known object at a known offset.
    bool
    isExact() const
    {
        return !unknown_base && bases.size() == 1 && exact_offset;
    }

    bool operator==(const MemLoc &other) const;

    std::string toString(const ir::Module *module = nullptr) const;
};

/// Conservative pairwise queries on abstract locations.
bool mayAlias(const MemLoc &a, const MemLoc &b);
bool mustAlias(const MemLoc &a, const MemLoc &b);

/// A location tagged with the instruction that produced it (a store for
/// RS entries, a load for EA entries; calls contribute their summarized
/// accesses with the call instruction as origin).
struct LocEntry
{
    MemLoc loc;
    const ir::Instruction *origin = nullptr;

    bool
    operator==(const LocEntry &other) const
    {
        return origin == other.origin && loc == other.loc;
    }
};

/**
 * Set of LocEntry, deduplicated by (location, origin).
 */
class LocationSet
{
  public:
    void add(LocEntry entry);
    void add(MemLoc loc, const ir::Instruction *origin)
    {
        add(LocEntry{std::move(loc), origin});
    }

    /// this |= other; returns true if anything was added.
    bool unionWith(const LocationSet &other);

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    const std::vector<LocEntry> &entries() const { return entries_; }
    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    std::vector<LocEntry> entries_;
};

/**
 * Set of exact (object, offset) pairs used for the guarded-address sets.
 * Only must-known addresses can guarantee a kill, so nothing else is
 * representable here by design.
 */
class GuardSet
{
  public:
    /// Inserts the location if it is exact; inexact stores guarantee
    /// nothing and are ignored.
    void insert(const MemLoc &loc);

    /// this &= other (set intersection), for Equation 2's meet.
    void intersectWith(const GuardSet &other);

    /// this |= other.
    void unionWith(const GuardSet &other);

    /// True if `loc` is exact and covered by this set — i.e., a load
    /// from `loc` is guarded.
    bool covers(const MemLoc &loc) const;

    bool empty() const { return pairs_.empty(); }
    std::size_t size() const { return pairs_.size(); }

    const std::set<std::pair<ir::ObjectId, std::int64_t>> &pairs() const
    {
        return pairs_;
    }

  private:
    std::set<std::pair<ir::ObjectId, std::int64_t>> pairs_;
};

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_MEMLOC_H
