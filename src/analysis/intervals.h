/**
 * @file
 * Cocke–Allen interval partitioning and the derived-graph hierarchy.
 *
 * Encore forms its candidate recovery regions from intervals (§3.3): an
 * interval is a loop plus the acyclic tails dangling from it (or just a
 * small SEME subgraph when no loop is present). Two properties matter:
 *
 *   1. every interval is single-entry — all edges from outside target
 *      its header — which makes every interval a SEME region whose
 *      header dominates its members; and
 *   2. the intervals of a graph form a derived graph that can itself be
 *      partitioned, yielding progressively larger candidate regions.
 *
 * The hierarchy exposes, per level, each interval flattened to its
 * base-graph (basic-block) members, plus the indices of the previous
 * level's intervals it absorbed — exactly the merge candidates that the
 * ΔCoverage/ΔCost > η heuristic (§3.4.2) evaluates.
 */
#ifndef ENCORE_ANALYSIS_INTERVALS_H
#define ENCORE_ANALYSIS_INTERVALS_H

#include <algorithm>
#include <vector>

#include "analysis/digraph.h"

namespace encore::analysis {

struct IntervalRegion
{
    /// Header in base-graph (block) ids.
    NodeId header = 0;
    /// Base-graph members, sorted ascending; includes the header.
    std::vector<NodeId> blocks;
    /// Indices into the previous level's interval list (empty at level 0).
    std::vector<std::size_t> children;

    bool
    contains(NodeId node) const
    {
        return std::binary_search(blocks.begin(), blocks.end(), node);
    }
};

class IntervalHierarchy
{
  public:
    /// Partitions the subgraph reachable from `entry`, then repeatedly
    /// partitions the derived graphs until no further coarsening occurs.
    IntervalHierarchy(const DiGraph &base, NodeId entry);

    /// Number of levels; level 0 is the first-order partition.
    std::size_t numLevels() const { return levels_.size(); }

    const std::vector<IntervalRegion> &level(std::size_t k) const
    {
        return levels_.at(k);
    }

    /// True if the final derived graph collapsed to a single node — the
    /// classic test for a reducible flow graph.
    bool isReducible() const { return reducible_; }

  private:
    std::vector<std::vector<IntervalRegion>> levels_;
    bool reducible_ = false;
};

/**
 * One round of interval partitioning over an arbitrary graph.
 * Returns interval membership as lists of node ids of `graph`, each with
 * its header first... (header is members.front()). Only nodes reachable
 * from `entry` are assigned.
 */
std::vector<std::vector<NodeId>> partitionIntervals(const DiGraph &graph,
                                                    NodeId entry);

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_INTERVALS_H
