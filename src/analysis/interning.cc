#include "analysis/interning.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace encore::analysis {

std::size_t
LocationInterner::MemLocKeyHash::operator()(const MemLoc &loc) const
{
    // FNV-1a over the canonical fields. The offset participates only
    // when exact, mirroring MemLoc::operator==.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(loc.unknown_base ? 1 : 0);
    mix(loc.exact_offset ? 1 : 0);
    if (loc.exact_offset)
        mix(static_cast<std::uint64_t>(loc.offset));
    for (const ir::ObjectId base : loc.bases)
        mix(base);
    return static_cast<std::size_t>(h);
}

LocId
LocationInterner::internLoc(const MemLoc &loc)
{
    auto [it, inserted] =
        loc_ids_.try_emplace(loc, static_cast<LocId>(locs_.size()));
    if (!inserted)
        return it->second;
    const LocId id = it->second;
    locs_.push_back(loc);
    GuardId guard = kInvalidInternId;
    if (loc.isExact()) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(loc.bases[0]) << 32) ^
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(loc.offset)) ^
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(loc.offset >> 32))
             << 52);
        auto [git, ginserted] = guard_ids_.try_emplace(
            key, static_cast<GuardId>(num_guards_));
        if (ginserted)
            ++num_guards_;
        guard = git->second;
    }
    loc_guards_.push_back(guard);
    return id;
}

EntryId
LocationInterner::internEntry(LocId loc, const ir::Instruction *origin)
{
    ENCORE_ASSERT(loc < locs_.size(), "unknown location id");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(loc) << 32) ^
        (reinterpret_cast<std::uintptr_t>(origin) * 0x9e3779b97f4a7c15ull);
    auto [it, inserted] =
        entry_ids_.try_emplace(key, static_cast<EntryId>(entries_.size()));
    if (!inserted) {
        // Guard against the (astronomically unlikely) key collision:
        // the stored entry must actually match.
        const LocEntry &existing = entries_[it->second];
        ENCORE_ASSERT(existing.origin == origin &&
                          entry_locs_[it->second] == loc,
                      "entry intern key collision");
        return it->second;
    }
    entries_.push_back(LocEntry{locs_[loc], origin});
    entry_locs_.push_back(loc);
    return it->second;
}

bool
IdSet::insert(std::uint32_t id)
{
    if (dense_) {
        const std::size_t word = id / 64;
        if (word >= bits_.size())
            bits_.resize(word + 1, 0);
        const std::uint64_t mask = 1ull << (id % 64);
        if (bits_[word] & mask)
            return false;
        bits_[word] |= mask;
        ++count_;
        return true;
    }
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), id);
    if (it != sorted_.end() && *it == id)
        return false;
    sorted_.insert(it, id);
    maybeDensify(sorted_.back());
    return true;
}

bool
IdSet::unionWith(const IdSet &other)
{
    if (other.empty())
        return false;
    if (dense_ && other.dense_) {
        if (other.bits_.size() > bits_.size())
            bits_.resize(other.bits_.size(), 0);
        std::size_t added = 0;
        for (std::size_t w = 0; w < other.bits_.size(); ++w) {
            const std::uint64_t incoming = other.bits_[w] & ~bits_[w];
            if (incoming) {
                added += __builtin_popcountll(incoming);
                bits_[w] |= incoming;
            }
        }
        count_ += added;
        return added != 0;
    }
    if (dense_) {
        bool changed = false;
        for (const std::uint32_t id : other.sorted_)
            changed |= insert(id);
        return changed;
    }
    if (other.dense_) {
        bool changed = false;
        other.forEach([&](std::uint32_t id) { changed |= insert(id); });
        return changed;
    }
    // Sparse-sparse linear merge.
    const std::vector<std::uint32_t> &a = sorted_;
    const std::vector<std::uint32_t> &b = other.sorted_;
    std::vector<std::uint32_t> merged;
    merged.reserve(a.size() + b.size());
    std::size_t i = 0, j = 0;
    bool changed = false;
    while (i < a.size() && j < b.size()) {
        if (a[i] < b[j]) {
            merged.push_back(a[i++]);
        } else if (b[j] < a[i]) {
            merged.push_back(b[j++]);
            changed = true;
        } else {
            merged.push_back(a[i++]);
            ++j;
        }
    }
    for (; i < a.size(); ++i)
        merged.push_back(a[i]);
    for (; j < b.size(); ++j) {
        merged.push_back(b[j]);
        changed = true;
    }
    sorted_ = std::move(merged);
    if (!sorted_.empty())
        maybeDensify(sorted_.back());
    return changed;
}

void
IdSet::intersectWith(const IdSet &other)
{
    if (empty())
        return;
    if (other.empty()) {
        *this = IdSet();
        return;
    }
    if (dense_ && other.dense_) {
        const std::size_t common =
            std::min(bits_.size(), other.bits_.size());
        std::size_t population = 0;
        for (std::size_t w = 0; w < common; ++w) {
            bits_[w] &= other.bits_[w];
            population += __builtin_popcountll(bits_[w]);
        }
        bits_.resize(common);
        count_ = population;
        return;
    }
    if (dense_) {
        // Result is at most |other|, which is sparse: rebuild sparse.
        std::vector<std::uint32_t> kept;
        kept.reserve(other.sorted_.size());
        for (const std::uint32_t id : other.sorted_) {
            if (contains(id))
                kept.push_back(id);
        }
        *this = IdSet();
        sorted_ = std::move(kept);
        return;
    }
    if (other.dense_) {
        std::vector<std::uint32_t> kept;
        kept.reserve(sorted_.size());
        for (const std::uint32_t id : sorted_) {
            if (other.contains(id))
                kept.push_back(id);
        }
        sorted_ = std::move(kept);
        return;
    }
    std::vector<std::uint32_t> kept;
    kept.reserve(std::min(sorted_.size(), other.sorted_.size()));
    std::size_t i = 0, j = 0;
    while (i < sorted_.size() && j < other.sorted_.size()) {
        if (sorted_[i] < other.sorted_[j]) {
            ++i;
        } else if (other.sorted_[j] < sorted_[i]) {
            ++j;
        } else {
            kept.push_back(sorted_[i]);
            ++i;
            ++j;
        }
    }
    sorted_ = std::move(kept);
}

bool
IdSet::contains(std::uint32_t id) const
{
    if (dense_) {
        const std::size_t word = id / 64;
        return word < bits_.size() &&
               (bits_[word] & (1ull << (id % 64))) != 0;
    }
    return std::binary_search(sorted_.begin(), sorted_.end(), id);
}

std::vector<std::uint32_t>
IdSet::toVector() const
{
    std::vector<std::uint32_t> out;
    out.reserve(size());
    forEach([&](std::uint32_t id) { out.push_back(id); });
    return out;
}

bool
IdSet::operator==(const IdSet &other) const
{
    if (size() != other.size())
        return false;
    if (dense_ == other.dense_)
        return dense_ ? bits_ == other.bits_ : sorted_ == other.sorted_;
    return toVector() == other.toVector();
}

void
IdSet::maybeDensify(std::uint32_t max_id)
{
    if (sorted_.size() >= kDenseMinElems &&
        sorted_.size() * 32 >= max_id) {
        densify(max_id);
    }
}

void
IdSet::densify(std::uint32_t max_id)
{
    bits_.assign(max_id / 64 + 1, 0);
    for (const std::uint32_t id : sorted_)
        bits_[id / 64] |= 1ull << (id % 64);
    count_ = sorted_.size();
    sorted_.clear();
    sorted_.shrink_to_fit();
    dense_ = true;
}

bool
AliasFilter::mayAlias(EntryId a, EntryId b)
{
    std::uint64_t key;
    if (origin_sensitive_) {
        key = (static_cast<std::uint64_t>(a) << 32) | b;
    } else {
        key = (static_cast<std::uint64_t>(interner_.locOfEntry(a)) << 32) |
              interner_.locOfEntry(b);
    }
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;
    const bool verdict =
        aa_.mayAlias(interner_.entry(a), interner_.entry(b));
    cache_.emplace(key, verdict);
    return verdict;
}

} // namespace encore::analysis
