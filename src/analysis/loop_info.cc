#include "analysis/loop_info.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/diagnostics.h"

namespace encore::analysis {

bool
Loop::contains(NodeId node) const
{
    return std::binary_search(blocks.begin(), blocks.end(), node);
}

std::vector<NodeId>
Loop::exitingBlocks(const DiGraph &graph) const
{
    std::vector<NodeId> exiting;
    for (const NodeId node : blocks) {
        if (graph.succs(node).empty()) {
            exiting.push_back(node);
            continue;
        }
        for (const NodeId succ : graph.succs(node)) {
            if (!contains(succ)) {
                exiting.push_back(node);
                break;
            }
        }
    }
    return exiting;
}

LoopInfo::LoopInfo(const DiGraph &graph, const DominatorTree &dom)
    : innermost_(graph.numNodes(), nullptr),
      by_header_(graph.numNodes(), nullptr)
{
    discoverLoops(graph, dom);
    buildForest();
    detectIrreducible(graph, dom);
}

void
LoopInfo::discoverLoops(const DiGraph &graph, const DominatorTree &dom)
{
    // Group back edges by header: the natural loop of header h is the
    // union over all back edges (latch -> h) of the nodes that can reach
    // the latch without passing through h.
    std::map<NodeId, std::vector<NodeId>> latches_by_header;
    for (NodeId node = 0; node < graph.numNodes(); ++node) {
        if (!dom.isReachable(node))
            continue;
        for (const NodeId succ : graph.succs(node)) {
            if (dom.dominates(succ, node))
                latches_by_header[succ].push_back(node);
        }
    }

    for (auto &[header, latches] : latches_by_header) {
        std::set<NodeId> body{header};
        std::vector<NodeId> worklist;
        for (const NodeId latch : latches) {
            if (body.insert(latch).second)
                worklist.push_back(latch);
        }
        while (!worklist.empty()) {
            const NodeId node = worklist.back();
            worklist.pop_back();
            for (const NodeId pred : graph.preds(node)) {
                if (!dom.isReachable(pred))
                    continue;
                if (body.insert(pred).second)
                    worklist.push_back(pred);
            }
        }

        auto loop = std::make_unique<Loop>();
        loop->header = header;
        loop->blocks.assign(body.begin(), body.end());
        loop->latches = latches;
        std::sort(loop->latches.begin(), loop->latches.end());
        by_header_[header] = loop.get();
        storage_.push_back(std::move(loop));
    }
}

void
LoopInfo::buildForest()
{
    // Sort by size so smaller (inner) loops come first; containment of
    // the header then gives the innermost-parent relationship.
    std::vector<Loop *> by_size;
    for (auto &loop : storage_)
        by_size.push_back(loop.get());
    std::sort(by_size.begin(), by_size.end(),
              [](const Loop *a, const Loop *b) {
                  if (a->blocks.size() != b->blocks.size())
                      return a->blocks.size() < b->blocks.size();
                  return a->header < b->header;
              });

    inner_first_ = by_size;

    // Innermost loop per node: first (smallest) loop containing it.
    for (Loop *loop : by_size) {
        for (const NodeId node : loop->blocks) {
            if (!innermost_[node])
                innermost_[node] = loop;
        }
    }

    // Parent: the innermost loop strictly containing the header that is
    // not the loop itself.
    for (Loop *loop : by_size) {
        Loop *candidate = nullptr;
        for (Loop *other : by_size) {
            if (other == loop)
                continue;
            if (other->blocks.size() <= loop->blocks.size())
                continue;
            if (other->contains(loop->header)) {
                candidate = other;
                break; // by_size order makes this the smallest such loop
            }
        }
        loop->parent = candidate;
        if (candidate)
            candidate->subloops.push_back(loop);
        else
            top_level_.push_back(loop);
    }

    // Depths, top-down.
    for (Loop *loop : by_size) {
        unsigned depth = 1;
        for (Loop *walk = loop->parent; walk; walk = walk->parent)
            ++depth;
        loop->depth = depth;
    }
}

void
LoopInfo::detectIrreducible(const DiGraph &graph, const DominatorTree &dom)
{
    // A retreating edge u->v (v is on the DFS stack when u->v is
    // examined) that is not a back edge (v does not dominate u) implies
    // irreducible control flow.
    const NodeId entry = dom.entry();
    std::vector<std::uint8_t> state(graph.numNodes(), 0);
    std::vector<std::pair<NodeId, std::size_t>> stack;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (child < graph.succs(node).size()) {
            const NodeId next = graph.succs(node)[child++];
            if (state[next] == 1 && !dom.dominates(next, node)) {
                irreducible_ = true;
                return;
            }
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            stack.pop_back();
        }
    }
}

Loop *
LoopInfo::loopFor(NodeId node) const
{
    ENCORE_ASSERT(node < innermost_.size(), "node out of range");
    return innermost_[node];
}

Loop *
LoopInfo::loopWithHeader(NodeId node) const
{
    ENCORE_ASSERT(node < by_header_.size(), "node out of range");
    return by_header_[node];
}

} // namespace encore::analysis
