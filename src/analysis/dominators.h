/**
 * @file
 * Dominator tree over a DiGraph (Cooper–Harvey–Kennedy iterative
 * algorithm). Used to find natural-loop back edges and to validate the
 * SEME property of candidate regions: the region header must dominate
 * every block in the region (paper §2.1, §3.3).
 */
#ifndef ENCORE_ANALYSIS_DOMINATORS_H
#define ENCORE_ANALYSIS_DOMINATORS_H

#include <vector>

#include "analysis/digraph.h"

namespace encore::analysis {

class DominatorTree
{
  public:
    /// Builds the dominator tree of the subgraph reachable from `entry`.
    DominatorTree(const DiGraph &graph, NodeId entry);

    NodeId entry() const { return entry_; }

    /// True if `node` was reachable from the entry.
    bool isReachable(NodeId node) const;

    /// Immediate dominator; the entry node's idom is itself.
    NodeId idom(NodeId node) const;

    /// True if `a` dominates `b` (reflexive).
    bool dominates(NodeId a, NodeId b) const;

    /// Children of `node` in the dominator tree.
    const std::vector<NodeId> &children(NodeId node) const;

  private:
    NodeId entry_;
    std::vector<NodeId> idom_;          // kNone if unreachable
    std::vector<NodeId> order_index_;   // position in RPO
    std::vector<std::vector<NodeId>> children_;

    static constexpr NodeId kNone = ~0u;
};

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_DOMINATORS_H
