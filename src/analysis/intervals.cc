#include "analysis/intervals.h"

#include <algorithm>
#include <deque>
#include <set>

#include "support/diagnostics.h"

namespace encore::analysis {

std::vector<std::vector<NodeId>>
partitionIntervals(const DiGraph &graph, NodeId entry)
{
    constexpr NodeId kUnassigned = ~0u;
    std::vector<NodeId> interval_of(graph.numNodes(), kUnassigned);
    std::vector<std::vector<NodeId>> intervals;

    // Restrict to reachable nodes.
    std::vector<bool> reachable(graph.numNodes(), false);
    for (const NodeId node : graph.reversePostOrder(entry))
        reachable[node] = true;

    std::deque<NodeId> headers{entry};
    std::set<NodeId> queued{entry};

    while (!headers.empty()) {
        const NodeId header = headers.front();
        headers.pop_front();

        const NodeId interval_id = static_cast<NodeId>(intervals.size());
        intervals.emplace_back();
        std::vector<NodeId> &members = intervals.back();
        members.push_back(header);
        interval_of[header] = interval_id;

        // Grow: absorb any unassigned node all of whose predecessors are
        // already inside this interval.
        bool changed = true;
        while (changed) {
            changed = false;
            // Index loop: members grows while we iterate.
            for (std::size_t m = 0; m < members.size(); ++m) {
                const NodeId member = members[m];
                for (const NodeId succ : graph.succs(member)) {
                    if (interval_of[succ] != kUnassigned || succ == entry)
                        continue;
                    bool all_preds_inside = true;
                    for (const NodeId pred : graph.preds(succ)) {
                        if (!reachable[pred])
                            continue;
                        if (interval_of[pred] != interval_id) {
                            all_preds_inside = false;
                            break;
                        }
                    }
                    if (all_preds_inside) {
                        members.push_back(succ);
                        interval_of[succ] = interval_id;
                        changed = true;
                    }
                }
            }
        }

        // Seed new headers: unassigned nodes with an edge from this
        // interval.
        for (const NodeId member : members) {
            for (const NodeId succ : graph.succs(member)) {
                if (interval_of[succ] == kUnassigned &&
                    queued.insert(succ).second) {
                    headers.push_back(succ);
                }
            }
        }
    }

    return intervals;
}

IntervalHierarchy::IntervalHierarchy(const DiGraph &base, NodeId entry)
{
    // Level 0: intervals of the base graph.
    {
        const auto partition = partitionIntervals(base, entry);
        std::vector<IntervalRegion> level;
        level.reserve(partition.size());
        for (const auto &members : partition) {
            IntervalRegion region;
            region.header = members.front();
            region.blocks = members;
            std::sort(region.blocks.begin(), region.blocks.end());
            level.push_back(std::move(region));
        }
        levels_.push_back(std::move(level));
    }

    // Higher levels: partition the derived graph of the previous level.
    while (true) {
        const std::vector<IntervalRegion> &prev = levels_.back();
        if (prev.size() <= 1) {
            reducible_ = true;
            break;
        }

        // Build the derived graph: one node per previous interval.
        // The entry interval is always index 0 (partitioning starts
        // there).
        std::vector<NodeId> interval_of_block(base.numNodes(), 0);
        for (std::size_t i = 0; i < prev.size(); ++i) {
            for (const NodeId block : prev[i].blocks)
                interval_of_block[block] = static_cast<NodeId>(i);
        }
        DiGraph derived(prev.size());
        for (std::size_t i = 0; i < prev.size(); ++i) {
            for (const NodeId block : prev[i].blocks) {
                for (const NodeId succ : base.succs(block)) {
                    const NodeId target = interval_of_block[succ];
                    if (target != static_cast<NodeId>(i))
                        derived.addEdge(static_cast<NodeId>(i), target);
                }
            }
        }

        const auto partition = partitionIntervals(derived, 0);
        if (partition.size() == prev.size())
            break; // no progress: irreducible residue

        std::vector<IntervalRegion> level;
        level.reserve(partition.size());
        for (const auto &members : partition) {
            IntervalRegion region;
            region.header = prev[members.front()].header;
            for (const NodeId child : members) {
                region.children.push_back(child);
                const auto &blocks = prev[child].blocks;
                region.blocks.insert(region.blocks.end(), blocks.begin(),
                                     blocks.end());
            }
            std::sort(region.blocks.begin(), region.blocks.end());
            level.push_back(std::move(region));
        }
        levels_.push_back(std::move(level));
    }
}

} // namespace encore::analysis
