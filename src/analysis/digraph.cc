#include "analysis/digraph.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace encore::analysis {

void
DiGraph::addEdge(NodeId from, NodeId to)
{
    ENCORE_ASSERT(from < numNodes() && to < numNodes(),
                  "edge endpoint out of range");
    auto &out = succs_[from];
    if (std::find(out.begin(), out.end(), to) != out.end())
        return;
    out.push_back(to);
    preds_[to].push_back(from);
}

std::vector<NodeId>
DiGraph::postOrder(NodeId entry) const
{
    std::vector<NodeId> order;
    std::vector<std::uint8_t> state(numNodes(), 0); // 0 new, 1 open, 2 done
    // Iterative DFS with an explicit stack of (node, next-child index).
    std::vector<std::pair<NodeId, std::size_t>> stack;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (child < succs_[node].size()) {
            const NodeId next = succs_[node][child++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            order.push_back(node);
            stack.pop_back();
        }
    }
    return order;
}

std::vector<NodeId>
DiGraph::reversePostOrder(NodeId entry) const
{
    std::vector<NodeId> order = postOrder(entry);
    std::reverse(order.begin(), order.end());
    return order;
}

bool
DiGraph::hasCycle(NodeId entry) const
{
    std::vector<std::uint8_t> state(numNodes(), 0);
    std::vector<std::pair<NodeId, std::size_t>> stack;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    while (!stack.empty()) {
        auto &[node, child] = stack.back();
        if (child < succs_[node].size()) {
            const NodeId next = succs_[node][child++];
            if (state[next] == 1)
                return true; // back edge in the DFS sense
            if (state[next] == 0) {
                state[next] = 1;
                stack.emplace_back(next, 0);
            }
        } else {
            state[node] = 2;
            stack.pop_back();
        }
    }
    return false;
}

DiGraph
buildCfg(const ir::Function &func)
{
    DiGraph graph(func.numBlocks());
    for (const auto &bb : func.blocks()) {
        for (const ir::BasicBlock *succ : bb->successors())
            graph.addEdge(bb->id(), succ->id());
    }
    return graph;
}

} // namespace encore::analysis
