#include "analysis/dominators.h"

#include "support/diagnostics.h"

namespace encore::analysis {

DominatorTree::DominatorTree(const DiGraph &graph, NodeId entry)
    : entry_(entry),
      idom_(graph.numNodes(), kNone),
      order_index_(graph.numNodes(), kNone),
      children_(graph.numNodes())
{
    const std::vector<NodeId> rpo = graph.reversePostOrder(entry);
    for (std::size_t i = 0; i < rpo.size(); ++i)
        order_index_[rpo[i]] = static_cast<NodeId>(i);

    idom_[entry] = entry;

    // Intersection walks both fingers up to the common ancestor using
    // RPO indices (Cooper, Harvey & Kennedy, "A Simple, Fast Dominance
    // Algorithm").
    auto intersect = [&](NodeId a, NodeId b) {
        while (a != b) {
            while (order_index_[a] > order_index_[b])
                a = idom_[a];
            while (order_index_[b] > order_index_[a])
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const NodeId node : rpo) {
            if (node == entry)
                continue;
            NodeId new_idom = kNone;
            for (const NodeId pred : graph.preds(node)) {
                if (idom_[pred] == kNone)
                    continue; // pred not yet processed or unreachable
                new_idom = new_idom == kNone ? pred
                                             : intersect(pred, new_idom);
            }
            ENCORE_ASSERT(new_idom != kNone,
                          "reachable node with no processed predecessor");
            if (idom_[node] != new_idom) {
                idom_[node] = new_idom;
                changed = true;
            }
        }
    }

    for (const NodeId node : rpo) {
        if (node != entry)
            children_[idom_[node]].push_back(node);
    }
}

bool
DominatorTree::isReachable(NodeId node) const
{
    return idom_[node] != kNone;
}

NodeId
DominatorTree::idom(NodeId node) const
{
    ENCORE_ASSERT(isReachable(node), "idom of unreachable node");
    return idom_[node];
}

bool
DominatorTree::dominates(NodeId a, NodeId b) const
{
    if (!isReachable(a) || !isReachable(b))
        return false;
    NodeId walk = b;
    while (true) {
        if (walk == a)
            return true;
        if (walk == entry_)
            return false;
        walk = idom_[walk];
    }
}

const std::vector<NodeId> &
DominatorTree::children(NodeId node) const
{
    return children_[node];
}

} // namespace encore::analysis
