#include "analysis/alias.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace encore::analysis {

bool
AliasAnalysis::mayAlias(const LocEntry &a, const LocEntry &b) const
{
    return analysis::mayAlias(a.loc, b.loc);
}

bool
AliasAnalysis::mustAlias(const LocEntry &a, const LocEntry &b) const
{
    return analysis::mustAlias(a.loc, b.loc);
}

StaticAliasAnalysis::StaticAliasAnalysis(const ir::Module &module)
    : module_(module)
{
    for (const auto &func : module.functions())
        analyzeFunction(*func);
}

void
StaticAliasAnalysis::analyzeFunction(const ir::Function &func)
{
    std::vector<PointsTo> pts(func.numRegs());

    // Parameters: either annotated with the objects they can address,
    // or (if they are ever used as an address base) unknown. We don't
    // know here whether a parameter carries a pointer, so un-annotated
    // parameters conservatively point anywhere — harmless for integer
    // parameters since their points-to is only consulted at address
    // bases.
    for (unsigned p = 0; p < func.numParams(); ++p) {
        if (const auto *objects = func.paramPointsTo(p)) {
            for (const ir::ObjectId obj : *objects)
                pts[p].objects.insert(obj);
        } else {
            pts[p].unknown = true;
        }
    }

    auto merge_from = [&](PointsTo &dest, const PointsTo &src) {
        bool changed = false;
        if (src.unknown && !dest.unknown) {
            dest.unknown = true;
            changed = true;
        }
        for (const ir::ObjectId obj : src.objects)
            changed |= dest.objects.insert(obj).second;
        return changed;
    };

    auto merge_operand = [&](PointsTo &dest, const ir::Operand &op) {
        if (op.isReg())
            return merge_from(dest, pts[op.reg]);
        return false;
    };

    // Flow-insensitive fixpoint over all instructions.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &bb : func.blocks()) {
            for (const auto &inst : bb->instructions()) {
                if (!inst.hasDest())
                    continue;
                PointsTo &dest = pts[inst.dest()];
                switch (inst.opcode()) {
                  case ir::Opcode::Lea: {
                    const ir::AddrExpr &addr = inst.addr();
                    if (addr.isObjectBase()) {
                        changed |= dest.objects.insert(addr.object).second;
                    } else if (addr.isRegBase()) {
                        changed |= merge_from(dest, pts[addr.base_reg]);
                    }
                    break;
                  }
                  case ir::Opcode::Mov:
                  case ir::Opcode::Neg:
                  case ir::Opcode::Not:
                    changed |= merge_operand(dest, inst.a());
                    break;
                  case ir::Opcode::Add:
                  case ir::Opcode::Sub:
                  case ir::Opcode::And:
                  case ir::Opcode::Or:
                  case ir::Opcode::Xor:
                    // Pointer arithmetic: the result may address anything
                    // either source could.
                    changed |= merge_operand(dest, inst.a());
                    changed |= merge_operand(dest, inst.b());
                    break;
                  case ir::Opcode::Select:
                    changed |= merge_operand(dest, inst.b());
                    changed |= merge_operand(dest, inst.c());
                    break;
                  case ir::Opcode::Load:
                  case ir::Opcode::Call:
                    // A pointer obtained from memory or from a callee
                    // escapes the tracking.
                    if (!dest.unknown) {
                        dest.unknown = true;
                        changed = true;
                    }
                    break;
                  default:
                    // Pure arithmetic (mul, div, compares, FP, shifts)
                    // is assumed not to manufacture pointers.
                    break;
                }
            }
        }
    }

    points_to_[&func] = std::move(pts);
}

const StaticAliasAnalysis::PointsTo &
StaticAliasAnalysis::pointsTo(const ir::Function &func, ir::RegId reg) const
{
    auto it = points_to_.find(&func);
    ENCORE_ASSERT(it != points_to_.end(), "function was not analyzed");
    if (reg >= it->second.size())
        return empty_;
    return it->second[reg];
}

MemLoc
StaticAliasAnalysis::classify(const ir::Function &func,
                              const ir::Instruction &inst) const
{
    ENCORE_ASSERT(ir::opcodeHasAddress(inst.opcode()),
                  "classify on a non-memory instruction");
    const ir::AddrExpr &addr = inst.addr();

    if (addr.isObjectBase()) {
        if (addr.offset.isImm())
            return MemLoc::exact(addr.object, addr.offset.imm);
        return MemLoc::object(addr.object);
    }

    if (addr.isRegBase()) {
        const PointsTo &pts = pointsTo(func, addr.base_reg);
        if (pts.unknown || pts.isEmpty())
            return MemLoc::anywhere();
        return MemLoc::objects(
            std::vector<ir::ObjectId>(pts.objects.begin(),
                                      pts.objects.end()));
    }

    return MemLoc::anywhere();
}

void
AddrObservation::record(ir::ObjectId object, std::uint32_t offset)
{
    objects.insert(object);
    if (overflow)
        return;
    addrs.insert({object, offset});
    if (addrs.size() > kMaxAddrs) {
        overflow = true;
        addrs.clear();
    }
}

const AddrObservation *
DynamicAddressProfile::find(const ir::Instruction *inst) const
{
    auto it = observations.find(inst);
    return it == observations.end() ? nullptr : &it->second;
}

ProfileGuidedAliasAnalysis::ProfileGuidedAliasAnalysis(
    const StaticAliasAnalysis &fallback,
    const DynamicAddressProfile &profile)
    : fallback_(fallback), profile_(profile)
{
}

MemLoc
ProfileGuidedAliasAnalysis::classify(const ir::Function &func,
                                     const ir::Instruction &inst) const
{
    const AddrObservation *obs = profile_.find(&inst);
    if (!obs || obs->objects.empty())
        return fallback_.classify(func, inst);

    if (!obs->overflow && obs->addrs.size() == 1) {
        const auto &[object, offset] = *obs->addrs.begin();
        return MemLoc::exact(object, offset);
    }
    return MemLoc::objects(std::vector<ir::ObjectId>(obs->objects.begin(),
                                                     obs->objects.end()));
}

bool
ProfileGuidedAliasAnalysis::mayAlias(const LocEntry &a,
                                     const LocEntry &b) const
{
    const AddrObservation *oa = a.origin ? profile_.find(a.origin) : nullptr;
    const AddrObservation *ob = b.origin ? profile_.find(b.origin) : nullptr;

    // With full (non-overflowed) address sets on both sides, the
    // optimistic answer is exact intersection of what actually happened.
    if (oa && ob && !oa->overflow && !ob->overflow && !oa->addrs.empty() &&
        !ob->addrs.empty()) {
        const auto &small = oa->addrs.size() <= ob->addrs.size() ? oa->addrs
                                                                 : ob->addrs;
        const auto &large = oa->addrs.size() <= ob->addrs.size() ? ob->addrs
                                                                 : oa->addrs;
        for (const auto &addr : small) {
            if (large.count(addr))
                return true;
        }
        return false;
    }

    // Object-granular refinement when either side overflowed.
    if (oa && ob && !oa->objects.empty() && !ob->objects.empty()) {
        for (const ir::ObjectId obj : oa->objects) {
            if (ob->objects.count(obj))
                return analysis::mayAlias(a.loc, b.loc);
        }
        return false;
    }

    return analysis::mayAlias(a.loc, b.loc);
}

bool
ProfileGuidedAliasAnalysis::mustAlias(const LocEntry &a,
                                      const LocEntry &b) const
{
    const AddrObservation *oa = a.origin ? profile_.find(a.origin) : nullptr;
    const AddrObservation *ob = b.origin ? profile_.find(b.origin) : nullptr;
    if (oa && ob && !oa->overflow && !ob->overflow &&
        oa->addrs.size() == 1 && ob->addrs.size() == 1 &&
        *oa->addrs.begin() == *ob->addrs.begin()) {
        return true;
    }
    return analysis::mustAlias(a.loc, b.loc);
}

} // namespace encore::analysis
