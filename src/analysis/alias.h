/**
 * @file
 * Alias analyses.
 *
 * The paper evaluates Encore under two alias regimes (Figure 7a):
 *
 *  - "Static Alias Analysis": what a conservative compile-time analysis
 *    can prove. Implemented here as a flow-insensitive points-to over
 *    `lea` provenance — a register holding a pointer is traced back to
 *    the objects it can address; anything that escapes the tracking
 *    (loaded pointers, call results, un-annotated parameters) aliases
 *    all of memory.
 *
 *  - "Optimistic Alias Analysis": a lower bound assuming a future
 *    (potentially dynamic) framework can disambiguate everything the
 *    profile run observed. Implemented as a profile-guided oracle that
 *    compares the concrete address sets recorded per static memory
 *    instruction and falls back to the static answer when a profile is
 *    missing or overflowed.
 */
#ifndef ENCORE_ANALYSIS_ALIAS_H
#define ENCORE_ANALYSIS_ALIAS_H

#include <set>
#include <unordered_map>

#include "analysis/memloc.h"

namespace encore::analysis {

class AliasAnalysis
{
  public:
    virtual ~AliasAnalysis() = default;

    /// Abstract location of a memory-accessing instruction's address
    /// expression within `func`.
    virtual MemLoc classify(const ir::Function &func,
                            const ir::Instruction &inst) const = 0;

    /// Pairwise refinement hooks; the defaults use only the abstract
    /// locations.
    virtual bool mayAlias(const LocEntry &a, const LocEntry &b) const;
    virtual bool mustAlias(const LocEntry &a, const LocEntry &b) const;

    /// True when mayAlias/mustAlias consult the origin instructions and
    /// not just the abstract locations. Lets memoization layers pick
    /// the smallest sound cache key (location pair vs entry pair).
    virtual bool
    originSensitive() const
    {
        return false;
    }
};

/**
 * Flow-insensitive, conservative points-to for register bases.
 */
class StaticAliasAnalysis : public AliasAnalysis
{
  public:
    explicit StaticAliasAnalysis(const ir::Module &module);

    MemLoc classify(const ir::Function &func,
                    const ir::Instruction &inst) const override;

    /// Points-to result for a register: unknown flag + candidate
    /// objects. Exposed for tests.
    struct PointsTo
    {
        bool unknown = false;
        std::set<ir::ObjectId> objects;

        bool
        isEmpty() const
        {
            return !unknown && objects.empty();
        }
    };

    const PointsTo &pointsTo(const ir::Function &func, ir::RegId reg) const;

  private:
    void analyzeFunction(const ir::Function &func);

    const ir::Module &module_;
    std::unordered_map<const ir::Function *, std::vector<PointsTo>>
        points_to_;
    PointsTo empty_;
};

/**
 * Concrete addresses observed for one static memory instruction during
 * profiling. When more than `kMaxAddrs` distinct addresses are seen the
 * set degrades to object granularity (overflow), keeping profiles small
 * for streaming access patterns.
 */
struct AddrObservation
{
    static constexpr std::size_t kMaxAddrs = 64;

    bool overflow = false;
    std::set<std::pair<ir::ObjectId, std::uint32_t>> addrs;
    std::set<ir::ObjectId> objects;

    void record(ir::ObjectId object, std::uint32_t offset);
};

/// Per-instruction dynamic address profile, filled by the interpreter's
/// AddressProfiler observer.
struct DynamicAddressProfile
{
    std::unordered_map<const ir::Instruction *, AddrObservation>
        observations;

    const AddrObservation *find(const ir::Instruction *inst) const;
};

class ProfileGuidedAliasAnalysis : public AliasAnalysis
{
  public:
    /// Both referees must outlive this object.
    ProfileGuidedAliasAnalysis(const StaticAliasAnalysis &fallback,
                               const DynamicAddressProfile &profile);

    MemLoc classify(const ir::Function &func,
                    const ir::Instruction &inst) const override;

    bool mayAlias(const LocEntry &a, const LocEntry &b) const override;
    bool mustAlias(const LocEntry &a, const LocEntry &b) const override;

    bool
    originSensitive() const override
    {
        // The queries compare the concrete address sets observed at the
        // origin instructions.
        return true;
    }

  private:
    const StaticAliasAnalysis &fallback_;
    const DynamicAddressProfile &profile_;
};

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_ALIAS_H
