/**
 * @file
 * Register liveness (backward may-analysis).
 *
 * The instrumentation pass (§3.2) must checkpoint, on region entry,
 * every register that is live-in to the region *and* overwritten inside
 * it — otherwise re-execution would read a clobbered value. This is the
 * standard use/def block-level formulation; `liveIn(bb)` gives the
 * registers whose pre-block values may still be read.
 */
#ifndef ENCORE_ANALYSIS_LIVENESS_H
#define ENCORE_ANALYSIS_LIVENESS_H

#include <vector>

#include "ir/function.h"

namespace encore::analysis {

/// Dense per-block register bitsets.
class RegSet
{
  public:
    RegSet() = default;
    explicit RegSet(std::size_t num_regs) : bits_(num_regs, false) {}

    void set(ir::RegId reg) { bits_.at(reg) = true; }
    void clear(ir::RegId reg) { bits_.at(reg) = false; }
    bool test(ir::RegId reg) const { return bits_.at(reg); }
    std::size_t size() const { return bits_.size(); }

    /// this |= other; returns true if anything changed.
    bool unionWith(const RegSet &other);

    /// Registers present in the set, ascending.
    std::vector<ir::RegId> toVector() const;

  private:
    std::vector<bool> bits_;
};

/// Registers read by one instruction (operands, address components,
/// call arguments; CkptReg reads its operand).
std::vector<ir::RegId> instructionUses(const ir::Instruction &inst);

/// The register defined by the instruction, or kInvalidReg.
ir::RegId instructionDef(const ir::Instruction &inst);

class Liveness
{
  public:
    explicit Liveness(const ir::Function &func);

    const RegSet &liveIn(ir::BlockId block) const
    {
        return live_in_.at(block);
    }
    const RegSet &liveOut(ir::BlockId block) const
    {
        return live_out_.at(block);
    }

    /// use(bb): registers read before any write within bb.
    const RegSet &upwardExposedUses(ir::BlockId block) const
    {
        return use_.at(block);
    }
    /// def(bb): registers written anywhere within bb.
    const RegSet &defs(ir::BlockId block) const { return def_.at(block); }

  private:
    std::vector<RegSet> use_;
    std::vector<RegSet> def_;
    std::vector<RegSet> live_in_;
    std::vector<RegSet> live_out_;
};

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_LIVENESS_H
