/**
 * @file
 * Interned location sets — the dense-ID backbone of the idempotence
 * dataflow (Equations 1–4).
 *
 * The RS/GA/EA equations manipulate sets of abstract locations over and
 * over for every candidate region and every loop summary. Doing that on
 * `std::set<std::pair<ObjectId, offset>>` and vectors of full MemLoc
 * values makes every union a chain of allocations and deep
 * comparisons. Instead, the analysis interns, once per module pass:
 *
 *   - LocId   — each distinct abstract location (MemLoc),
 *   - GuardId — each distinct *exact* (object, offset) pair (the only
 *               locations a guarded-address set can contain),
 *   - EntryId — each distinct (LocId, origin instruction) pair, the
 *               element type of RS/EA sets.
 *
 * IDs are assigned in a deterministic pre-pass over the module in
 * program order, so later analysis — including parallel analysis — is
 * lookup-only and bit-reproducible at any thread count.
 *
 * `IdSet` is the set representation: a sorted small-vector of u32 IDs
 * with linear-merge union/intersection, transparently switching to a
 * bitset once the vector would outgrow one (dense sets arise in the
 * whole-loop RS^l = AS^l rule). Iteration is always in ascending ID
 * order regardless of representation.
 *
 * `AliasFilter` memoizes the Equation 4 may-alias queries in a flat
 * pair-keyed cache; for origin-insensitive analyses the key degrades to
 * the location pair, which is what makes the O(|EA|·|RS|) violation
 * check cheap across the many regions that share locations.
 */
#ifndef ENCORE_ANALYSIS_INTERNING_H
#define ENCORE_ANALYSIS_INTERNING_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/alias.h"
#include "analysis/memloc.h"

namespace encore::analysis {

using LocId = std::uint32_t;
using GuardId = std::uint32_t;
using EntryId = std::uint32_t;

inline constexpr std::uint32_t kInvalidInternId = 0xffffffffu;

/**
 * Module-wide intern table for locations, exact pairs and tagged
 * entries. Interning is single-threaded (construction-time); lookups
 * afterwards are const and thread-safe.
 */
class LocationInterner
{
  public:
    LocId internLoc(const MemLoc &loc);
    EntryId internEntry(LocId loc, const ir::Instruction *origin);
    EntryId
    internEntry(const MemLoc &loc, const ir::Instruction *origin)
    {
        return internEntry(internLoc(loc), origin);
    }

    const MemLoc &loc(LocId id) const { return locs_[id]; }
    const LocEntry &entry(EntryId id) const { return entries_[id]; }
    LocId locOfEntry(EntryId id) const { return entry_locs_[id]; }
    /// Guard id of a location (kInvalidInternId unless the location is
    /// exact).
    GuardId guardOfLoc(LocId id) const { return loc_guards_[id]; }
    GuardId
    guardOfEntry(EntryId id) const
    {
        return loc_guards_[entry_locs_[id]];
    }

    std::uint32_t
    numLocs() const
    {
        return static_cast<std::uint32_t>(locs_.size());
    }
    std::uint32_t
    numGuards() const
    {
        return static_cast<std::uint32_t>(num_guards_);
    }
    std::uint32_t
    numEntries() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

  private:
    struct MemLocKeyHash
    {
        std::size_t operator()(const MemLoc &loc) const;
    };

    std::vector<MemLoc> locs_;
    std::vector<GuardId> loc_guards_; ///< Per LocId; invalid if inexact.
    std::vector<LocEntry> entries_;
    std::vector<LocId> entry_locs_; ///< Per EntryId.
    std::unordered_map<MemLoc, LocId, MemLocKeyHash> loc_ids_;
    std::unordered_map<std::uint64_t, GuardId> guard_ids_;
    std::unordered_map<std::uint64_t, EntryId> entry_ids_;
    std::size_t num_guards_ = 0;
};

/**
 * Sorted-unique set of u32 IDs with a bitset fallback for dense sets.
 * All mutators keep ascending order; forEach/toVector iterate ascending
 * in either representation, so downstream consumers are independent of
 * the storage choice.
 */
class IdSet
{
  public:
    /// Adds `id`; returns true when it was not present.
    bool insert(std::uint32_t id);

    /// this |= other; returns true if anything was added.
    bool unionWith(const IdSet &other);

    /// this &= other.
    void intersectWith(const IdSet &other);

    bool contains(std::uint32_t id) const;

    bool
    empty() const
    {
        return size() == 0;
    }

    std::size_t
    size() const
    {
        return dense_ ? count_ : sorted_.size();
    }

    bool dense() const { return dense_; }

    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        if (!dense_) {
            for (const std::uint32_t id : sorted_)
                fn(id);
            return;
        }
        for (std::size_t word = 0; word < bits_.size(); ++word) {
            std::uint64_t w = bits_[word];
            while (w) {
                const int bit = __builtin_ctzll(w);
                fn(static_cast<std::uint32_t>(word * 64 + bit));
                w &= w - 1;
            }
        }
    }

    std::vector<std::uint32_t> toVector() const;

    bool operator==(const IdSet &other) const;

  private:
    /// Representation policy: keep the small-vector until it stops
    /// being small *and* a bitset over the IDs seen so far would be no
    /// bigger than the vector (4 B/element vs universe/8 B).
    static constexpr std::size_t kDenseMinElems = 48;

    void maybeDensify(std::uint32_t max_id);
    void densify(std::uint32_t max_id);

    bool dense_ = false;
    std::vector<std::uint32_t> sorted_;
    std::vector<std::uint64_t> bits_;
    std::size_t count_ = 0; ///< Population count when dense.
};

/**
 * Memoized may-alias filter over interned entries (Equation 4's
 * EA x RS check). One instance per analysis pass; not thread-safe.
 */
class AliasFilter
{
  public:
    AliasFilter(const LocationInterner &interner, const AliasAnalysis &aa)
        : interner_(interner),
          aa_(aa),
          origin_sensitive_(aa.originSensitive())
    {
    }

    bool mayAlias(EntryId a, EntryId b);

    /// Calls fn(exposed, store) for every (exposed, store) pair of
    /// ea x rs (ascending ID order) that may alias.
    template <typename Fn>
    void
    forEachAliasingPair(const IdSet &ea, const IdSet &rs, Fn fn)
    {
        ea.forEach([&](EntryId exposed) {
            rs.forEach([&](EntryId store) {
                if (mayAlias(exposed, store))
                    fn(exposed, store);
            });
        });
    }

    std::size_t cacheSize() const { return cache_.size(); }

  private:
    const LocationInterner &interner_;
    const AliasAnalysis &aa_;
    bool origin_sensitive_;
    /// Flat pair-keyed memo: (a << 32 | b) -> verdict. Keys are entry
    /// IDs for origin-sensitive analyses, location IDs otherwise.
    std::unordered_map<std::uint64_t, bool> cache_;
};

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_INTERNING_H
