/**
 * @file
 * Natural-loop detection and the loop nesting forest.
 *
 * The paper's idempotence analysis (§3.1.2) treats loops hierarchically:
 * inner-most loops are summarized first and become pseudo-blocks in the
 * analysis of enclosing regions. Natural loops (back edges whose target
 * dominates their source) are by construction in the "canonical form"
 * the paper requires — a single header and no side entries. Cycles that
 * are *not* natural loops (irreducible control flow) cannot be
 * canonicalized; Encore leaves the enclosing region uninstrumented, which
 * our analysis reports as RegionClass::Unknown.
 */
#ifndef ENCORE_ANALYSIS_LOOP_INFO_H
#define ENCORE_ANALYSIS_LOOP_INFO_H

#include <memory>
#include <vector>

#include "analysis/dominators.h"

namespace encore::analysis {

struct Loop
{
    NodeId header = 0;
    /// All nodes in the loop, sorted ascending (includes the header and
    /// the nodes of any nested loops).
    std::vector<NodeId> blocks;
    /// Sources of back edges into the header.
    std::vector<NodeId> latches;
    Loop *parent = nullptr;
    std::vector<Loop *> subloops;
    /// Nesting depth; top-level loops have depth 1.
    unsigned depth = 1;

    bool contains(NodeId node) const;

    /// Blocks with at least one successor outside the loop, or with no
    /// successors at all (function-exit blocks), in ascending order.
    std::vector<NodeId> exitingBlocks(const DiGraph &graph) const;
};

class LoopInfo
{
  public:
    LoopInfo(const DiGraph &graph, const DominatorTree &dom);

    /// All loops, inner-most first (safe order for bottom-up loop
    /// summarization).
    const std::vector<Loop *> &loopsInnerFirst() const
    {
        return inner_first_;
    }

    const std::vector<Loop *> &topLevelLoops() const { return top_level_; }

    /// Inner-most loop containing `node`, or nullptr.
    Loop *loopFor(NodeId node) const;

    /// Loop whose header is `node`, or nullptr.
    Loop *loopWithHeader(NodeId node) const;

    /// True if the graph contains a retreating edge that is not a back
    /// edge — i.e., irreducible control flow exists somewhere.
    bool hasIrreducibleEdges() const { return irreducible_; }

    std::size_t numLoops() const { return storage_.size(); }

  private:
    void discoverLoops(const DiGraph &graph, const DominatorTree &dom);
    void buildForest();
    void detectIrreducible(const DiGraph &graph, const DominatorTree &dom);

    std::vector<std::unique_ptr<Loop>> storage_;
    std::vector<Loop *> inner_first_;
    std::vector<Loop *> top_level_;
    std::vector<Loop *> innermost_; // per node
    std::vector<Loop *> by_header_; // per node
    bool irreducible_ = false;
};

} // namespace encore::analysis

#endif // ENCORE_ANALYSIS_LOOP_INFO_H
