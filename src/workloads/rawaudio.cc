/**
 * @file
 * rawcaudio / rawdaudio — IMA ADPCM raw audio codec (Mediabench
 * stand-ins).
 *
 * Nearly all execution time sits in one tight per-sample loop whose
 * codec state lives in registers; the output stream is append-only.
 * These are the paper's best-case columns in Figure 8 — virtually
 * every unmasked fault lands in an idempotent region.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildRawCAudio()
{
    auto module = std::make_unique<ir::Module>("rawcaudio");
    B b(module.get());

    const auto pcm = b.global("pcm", 1024);
    const auto adpcm = b.global("adpcm", 1024);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *compress = b.newBlock("compress");
    auto *comp_loop = b.newBlock("comp_loop");
    auto *neg = b.newBlock("neg");
    auto *pos = b.newBlock("pos");
    auto *emit = b.newBlock("emit");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto pred = b.mov(B::imm(0));
    const auto step = b.mov(B::imm(7));
    const auto acc = b.mov(B::imm(0));
    const auto mag = b.mov(B::imm(0));
    const auto sign = b.mov(B::imm(0));
    b.jmp(fill);

    b.setInsertPoint(fill);
    const auto t0 = b.mul(B::reg(i), B::imm(13));
    const auto t1 = b.band(B::reg(t0), B::imm(511));
    const auto t2 = b.sub(B::reg(t1), B::imm(256));
    b.store(AddrExpr::makeObject(pcm, B::reg(i)), B::reg(t2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill, compress);

    b.setInsertPoint(compress);
    b.movTo(i, B::imm(0));
    b.jmp(comp_loop);

    b.setInsertPoint(comp_loop);
    const auto s = b.load(AddrExpr::makeObject(pcm, B::reg(i)));
    const auto diff = b.sub(B::reg(s), B::reg(pred));
    const auto isneg = b.cmpLt(B::reg(diff), B::imm(0));
    b.br(B::reg(isneg), neg, pos);

    b.setInsertPoint(neg);
    b.movTo(sign, B::imm(4));
    b.movTo(mag, B::reg(b.neg(B::reg(diff))));
    b.jmp(emit);

    b.setInsertPoint(pos);
    b.movTo(sign, B::imm(0));
    b.movTo(mag, B::reg(diff));
    b.jmp(emit);

    b.setInsertPoint(emit);
    const auto q0 = b.div(B::reg(mag), B::reg(step));
    const auto big = b.cmpGt(B::reg(q0), B::imm(3));
    const auto level = b.select(B::reg(big), B::imm(3), B::reg(q0));
    const auto code = b.bor(B::reg(sign), B::reg(level));
    b.store(AddrExpr::makeObject(adpcm, B::reg(i)), B::reg(code));
    const auto delta = b.mul(B::reg(level), B::reg(step));
    const auto signed_delta = b.select(
        B::reg(sign), B::reg(b.neg(B::reg(delta))), B::reg(delta));
    b.emitTo(pred, Opcode::Add, B::reg(pred), B::reg(signed_delta));
    const auto faster = b.cmpGt(B::reg(level), B::imm(1));
    const auto grow = b.mul(B::reg(step), B::imm(3));
    const auto grown = b.div(B::reg(grow), B::imm(2));
    const auto shrink0 = b.mul(B::reg(step), B::imm(7));
    const auto shrunk = b.div(B::reg(shrink0), B::imm(8));
    const auto adapted =
        b.select(B::reg(faster), B::reg(grown), B::reg(shrunk));
    const auto too_small = b.cmpLt(B::reg(adapted), B::imm(4));
    const auto floored = b.select(B::reg(too_small), B::imm(4),
                                  B::reg(adapted));
    const auto too_big = b.cmpGt(B::reg(floored), B::imm(32767));
    b.emitTo(step, Opcode::Select, B::reg(too_big), B::imm(32767),
             B::reg(floored));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto cc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(cc), comp_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto av = b.load(AddrExpr::makeObject(adpcm, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(av));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

std::unique_ptr<ir::Module>
buildRawDAudio()
{
    auto module = std::make_unique<ir::Module>("rawdaudio");
    B b(module.get());

    const auto adpcm = b.global("adpcm", 1024);
    const auto pcm = b.global("pcm", 1024);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *expand = b.newBlock("expand");
    auto *exp_loop = b.newBlock("exp_loop");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto pred = b.mov(B::imm(0));
    const auto step = b.mov(B::imm(7));
    const auto acc = b.mov(B::imm(0));
    // Output pointer indistinguishable from the input stream.
    const auto padpcm = b.lea(AddrExpr::makeObject(adpcm));
    const auto ppcm = b.lea(AddrExpr::makeObject(pcm));
    const auto one = b.mov(B::imm(1));
    const auto out_ptr =
        b.select(B::reg(one), B::reg(ppcm), B::reg(padpcm));
    b.jmp(fill);

    b.setInsertPoint(fill);
    const auto c0 = b.mul(B::reg(i), B::imm(5));
    const auto code_v = b.band(B::reg(c0), B::imm(7));
    b.store(AddrExpr::makeObject(adpcm, B::reg(i)), B::reg(code_v));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill, expand);

    b.setInsertPoint(expand);
    b.movTo(i, B::imm(0));
    b.jmp(exp_loop);

    b.setInsertPoint(exp_loop);
    const auto code = b.load(AddrExpr::makeObject(adpcm, B::reg(i)));
    // Bitstream-corruption guard: codes are 3 bits wide by
    // construction, so this never fires.
    auto *code_err = b.newBlock("code_err");
    auto *exp_body = b.newBlock("exp_body");
    const auto bad_code = b.cmpGt(B::reg(code), B::imm(1000));
    b.br(B::reg(bad_code), code_err, exp_body);

    b.setInsertPoint(code_err);
    const auto r_ec = b.load(AddrExpr::makeObject(errlog));
    const auto r_ec2 = b.add(B::reg(r_ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(r_ec2));
    b.jmp(exp_body);

    b.setInsertPoint(exp_body);
    const auto level = b.band(B::reg(code), B::imm(3));
    const auto sign = b.band(B::reg(code), B::imm(4));
    const auto delta = b.mul(B::reg(level), B::reg(step));
    const auto signed_delta = b.select(
        B::reg(sign), B::reg(b.neg(B::reg(delta))), B::reg(delta));
    b.emitTo(pred, Opcode::Add, B::reg(pred), B::reg(signed_delta));
    b.store(AddrExpr::makeReg(out_ptr, B::reg(i)), B::reg(pred));
    const auto faster = b.cmpGt(B::reg(level), B::imm(1));
    const auto grow = b.mul(B::reg(step), B::imm(3));
    const auto grown = b.div(B::reg(grow), B::imm(2));
    const auto shrink0 = b.mul(B::reg(step), B::imm(7));
    const auto shrunk = b.div(B::reg(shrink0), B::imm(8));
    const auto adapted =
        b.select(B::reg(faster), B::reg(grown), B::reg(shrunk));
    const auto too_small = b.cmpLt(B::reg(adapted), B::imm(4));
    const auto floored = b.select(B::reg(too_small), B::imm(4),
                                  B::reg(adapted));
    const auto too_big = b.cmpGt(B::reg(floored), B::imm(32767));
    b.emitTo(step, Opcode::Select, B::reg(too_big), B::imm(32767),
             B::reg(floored));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto ec = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(ec), exp_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto pv = b.load(AddrExpr::makeObject(pcm, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(pv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
