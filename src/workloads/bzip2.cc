/**
 * @file
 * 256.bzip2 — block-sorting compression front end (SPEC2K-INT
 * stand-in).
 *
 * Counting sort over symbol frequencies (histogram WARs), a
 * cursor-based permutation scatter, and a small move-to-front table
 * updated in place — the dense WAR mix typical of bzip2's block
 * sorter, with an idempotent fill and checksum around it.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildBzip2()
{
    auto module = std::make_unique<ir::Module>("256.bzip2");
    B b(module.get());

    const auto block = b.global("block", 256);
    const auto freq = b.global("freq", 16);
    const auto cursor = b.global("cursor", 16);
    const auto sorted = b.global("sorted", 256);
    const auto mtf = b.global("mtf", 16);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *count_init = b.newBlock("count_init");
    auto *count_loop = b.newBlock("count_loop");
    auto *prefix_init = b.newBlock("prefix_init");
    auto *prefix_loop = b.newBlock("prefix_loop");
    auto *scatter_init = b.newBlock("scatter_init");
    auto *scatter_loop = b.newBlock("scatter_loop");
    auto *mtf_fill = b.newBlock("mtf_fill");
    auto *mtf_scan = b.newBlock("mtf_scan");
    auto *mtf_find = b.newBlock("mtf_find");
    auto *mtf_step = b.newBlock("mtf_step");
    auto *mtf_swap = b.newBlock("mtf_swap");
    auto *mtf_next = b.newBlock("mtf_next");
    auto *sum_init = b.newBlock("sum_init");
    auto *sum_loop = b.newBlock("sum_loop");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto j = b.mov(B::imm(0));
    const auto seed = b.mov(B::imm(0x9E3779B97F4A7C15LL));
    const auto acc = b.mov(B::imm(0));
    b.jmp(fill);

    // fill: pseudo-random symbols (writes only: idempotent).
    b.setInsertPoint(fill);
    const auto s1 = b.mul(B::reg(seed), B::imm(6364136223846793005LL));
    b.emitTo(seed, Opcode::Add, B::reg(s1), B::imm(1442695040888963407LL));
    const auto sym0 = b.shr(B::reg(seed), B::imm(40));
    const auto sym = b.band(B::reg(sym0), B::imm(15));
    b.store(AddrExpr::makeObject(block, B::reg(i)), B::reg(sym));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill, count_init);

    // count: histogram — load/increment/store WAR per symbol.
    b.setInsertPoint(count_init);
    b.movTo(i, B::imm(0));
    b.jmp(count_loop);

    b.setInsertPoint(count_loop);
    const auto cs = b.load(AddrExpr::makeObject(block, B::reg(i)));
    const auto f = b.load(AddrExpr::makeObject(freq, B::reg(cs)));
    const auto f2 = b.add(B::reg(f), B::imm(1));
    b.store(AddrExpr::makeObject(freq, B::reg(cs)), B::reg(f2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto cc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(cc), count_loop, prefix_init);

    // prefix: cursor[k] = cursor[k-1] + freq[k-1].
    b.setInsertPoint(prefix_init);
    b.store(AddrExpr::makeObject(cursor, B::imm(0)), B::imm(0));
    b.movTo(j, B::imm(1));
    b.jmp(prefix_loop);

    b.setInsertPoint(prefix_loop);
    const auto jm1 = b.sub(B::reg(j), B::imm(1));
    const auto cprev = b.load(AddrExpr::makeObject(cursor, B::reg(jm1)));
    const auto fprev = b.load(AddrExpr::makeObject(freq, B::reg(jm1)));
    const auto csum = b.add(B::reg(cprev), B::reg(fprev));
    b.store(AddrExpr::makeObject(cursor, B::reg(j)), B::reg(csum));
    b.addTo(j, B::reg(j), B::imm(1));
    const auto pc = b.cmpLt(B::reg(j), B::imm(16));
    b.br(B::reg(pc), prefix_loop, scatter_init);

    // scatter: sorted[cursor[sym]++] = sym — double WAR per element.
    b.setInsertPoint(scatter_init);
    b.movTo(i, B::imm(0));
    b.jmp(scatter_loop);

    b.setInsertPoint(scatter_loop);
    const auto ss = b.load(AddrExpr::makeObject(block, B::reg(i)));
    const auto pos = b.load(AddrExpr::makeObject(cursor, B::reg(ss)));
    // Cursor-overflow guard: dynamically dead (cursors stay below the
    // block size), but statically a WAR on the error counter.
    auto *cursor_err = b.newBlock("cursor_err");
    auto *scatter_do = b.newBlock("scatter_do");
    const auto overflow = b.cmpGt(B::reg(pos), B::imm(100000));
    b.br(B::reg(overflow), cursor_err, scatter_do);

    b.setInsertPoint(cursor_err);
    const auto ec = b.load(AddrExpr::makeObject(errlog));
    const auto ec2 = b.add(B::reg(ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(ec2));
    b.jmp(scatter_do);

    b.setInsertPoint(scatter_do);
    const auto pmask = b.band(B::reg(pos), B::imm(255));
    b.store(AddrExpr::makeObject(sorted, B::reg(pmask)), B::reg(ss));
    const auto pos2 = b.add(B::reg(pos), B::imm(1));
    b.store(AddrExpr::makeObject(cursor, B::reg(ss)), B::reg(pos2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto sc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(sc), scatter_loop, mtf_fill);

    // mtf table init: identity permutation.
    auto *mtf_fill_loop = b.newBlock("mtf_fill_loop");
    b.setInsertPoint(mtf_fill);
    b.movTo(j, B::imm(0));
    b.jmp(mtf_fill_loop);

    b.setInsertPoint(mtf_fill_loop);
    b.store(AddrExpr::makeObject(mtf, B::reg(j)), B::reg(j));
    b.addTo(j, B::reg(j), B::imm(1));
    const auto mfc = b.cmpLt(B::reg(j), B::imm(16));
    b.br(B::reg(mfc), mtf_fill_loop, mtf_scan);

    // mtf transform over the first min(n, 64) sorted symbols.
    b.setInsertPoint(mtf_scan);
    b.movTo(i, B::imm(0));
    b.jmp(mtf_step);

    b.setInsertPoint(mtf_step);
    const auto small = b.cmpLt(B::reg(n), B::imm(64));
    const auto lim = b.select(B::reg(small), B::reg(n), B::imm(64));
    const auto mmore = b.cmpLt(B::reg(i), B::reg(lim));
    b.br(B::reg(mmore), mtf_find, sum_init);

    // Find the symbol's rank in the mtf table (always terminates: the
    // table stays a permutation of 0..15).
    auto *mtf_find_loop = b.newBlock("mtf_find_loop");
    auto *mtf_adv = b.newBlock("mtf_adv");
    const auto s_cur = b.function()->allocReg();
    b.setInsertPoint(mtf_find);
    b.movTo(s_cur,
            B::reg(b.load(AddrExpr::makeObject(sorted, B::reg(i)))));
    b.movTo(j, B::imm(0));
    b.jmp(mtf_find_loop);

    b.setInsertPoint(mtf_find_loop);
    const auto mj = b.load(AddrExpr::makeObject(mtf, B::reg(j)));
    const auto hit = b.cmpEq(B::reg(mj), B::reg(s_cur));
    b.br(B::reg(hit), mtf_swap, mtf_adv);

    b.setInsertPoint(mtf_adv);
    const auto jn = b.add(B::reg(j), B::imm(1));
    const auto jw = b.band(B::reg(jn), B::imm(15));
    b.movTo(j, B::reg(jw));
    b.jmp(mtf_find_loop);

    // Move to front: swap ranks 0 and j — in-place WARs on mtf.
    b.setInsertPoint(mtf_swap);
    const auto m0 = b.load(AddrExpr::makeObject(mtf, B::imm(0)));
    const auto mj2 = b.load(AddrExpr::makeObject(mtf, B::reg(j)));
    b.store(AddrExpr::makeObject(mtf, B::imm(0)), B::reg(mj2));
    b.store(AddrExpr::makeObject(mtf, B::reg(j)), B::reg(m0));
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(j));
    b.jmp(mtf_next);

    b.setInsertPoint(mtf_next);
    b.addTo(i, B::reg(i), B::imm(1));
    b.jmp(mtf_step);

    // Checksum the sorted block.
    b.setInsertPoint(sum_init);
    b.movTo(i, B::imm(0));
    b.jmp(sum_loop);

    b.setInsertPoint(sum_loop);
    const auto sv = b.load(AddrExpr::makeObject(sorted, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(sv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto uc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(uc), sum_loop, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
