/**
 * @file
 * g721encode / g721decode — ADPCM speech codec (Mediabench stand-ins).
 *
 * The per-sample loops carry their predictor state (previous value and
 * step index) in registers, exactly like the real codec keeps them in
 * locals: the only instrumentation the hot loop needs is the
 * register checkpoint at region entry, so both directions land in the
 * "Recoverable w/ Idempotence" slice with near-perfect coverage
 * (Figure 8's rawcaudio/g721 columns).
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;

/// Emits the shared step-size table (read-only after setup).
ir::ObjectId
emitStepTable(B &b)
{
    return b.global("steps", 16);
}

/// Emits a function filling the step table with a quasi-exponential
/// ramp; runs once at startup.
void
emitInitSteps(B &b, ir::ObjectId steps)
{
    b.beginFunction("init_steps", 0);
    auto *loop = b.newBlock("loop");
    auto *done = b.newBlock("done");
    const auto k = b.mov(B::imm(0));
    const auto v = b.mov(B::imm(7));
    b.jmp(loop);

    b.setInsertPoint(loop);
    b.store(AddrExpr::makeObject(steps, B::reg(k)), B::reg(v));
    const auto grown = b.mul(B::reg(v), B::imm(5));
    const auto next = b.div(B::reg(grown), B::imm(4));
    b.movTo(v, B::reg(next));
    b.addTo(k, B::reg(k), B::imm(1));
    const auto kc = b.cmpLt(B::reg(k), B::imm(16));
    b.br(B::reg(kc), loop, done);

    b.setInsertPoint(done);
    b.ret(B::imm(0));
    b.endFunction();
}

} // namespace

std::unique_ptr<ir::Module>
buildG721Encode()
{
    auto module = std::make_unique<ir::Module>("g721encode");
    B b(module.get());

    const auto steps = emitStepTable(b);
    const auto pcm = b.global("pcm", 512);
    const auto codes = b.global("codes", 512);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);
    emitInitSteps(b, steps);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *encode = b.newBlock("encode");
    auto *neg = b.newBlock("neg");
    auto *pos = b.newBlock("pos");
    auto *quantized = b.newBlock("quantized");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    b.callVoid("init_steps", {});
    const auto i = b.mov(B::imm(0));
    const auto valpred = b.mov(B::imm(0));
    const auto index = b.mov(B::imm(4));
    const auto acc = b.mov(B::imm(0));
    const auto mag = b.mov(B::imm(0));
    const auto sign = b.mov(B::imm(0));
    b.jmp(fill);

    // Synthesize a PCM waveform (writes only).
    b.setInsertPoint(fill);
    const auto w0 = b.mul(B::reg(i), B::imm(17));
    const auto w1 = b.band(B::reg(w0), B::imm(255));
    const auto w2 = b.sub(B::reg(w1), B::imm(128));
    const auto w3 = b.mul(B::reg(w2), B::imm(3));
    b.store(AddrExpr::makeObject(pcm, B::reg(i)), B::reg(w3));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill, encode);

    // encode: quantize the prediction error against the step table.
    b.setInsertPoint(encode);
    b.movTo(i, B::imm(0));
    auto *enc_loop = b.newBlock("enc_loop");
    b.jmp(enc_loop);

    b.setInsertPoint(enc_loop);
    const auto sample = b.load(AddrExpr::makeObject(pcm, B::reg(i)));
    const auto diff = b.sub(B::reg(sample), B::reg(valpred));
    const auto is_neg = b.cmpLt(B::reg(diff), B::imm(0));
    b.br(B::reg(is_neg), neg, pos);

    b.setInsertPoint(neg);
    b.movTo(sign, B::imm(8));
    b.movTo(mag, B::reg(b.neg(B::reg(diff))));
    b.jmp(quantized);

    b.setInsertPoint(pos);
    b.movTo(sign, B::imm(0));
    b.movTo(mag, B::reg(diff));
    b.jmp(quantized);

    b.setInsertPoint(quantized);
    const auto step = b.load(AddrExpr::makeObject(steps, B::reg(index)));
    const auto q0 = b.div(B::reg(mag), B::reg(step));
    const auto q1 = b.cmpGt(B::reg(q0), B::imm(7));
    const auto level = b.select(B::reg(q1), B::imm(7), B::reg(q0));
    // Step-table corruption guard: dynamically dead, WAR on the error
    // counter — visible only without Pmin pruning.
    auto *step_err = b.newBlock("step_err");
    auto *emit_code = b.newBlock("emit_code");
    const auto bad_step = b.cmpLe(B::reg(step), B::imm(0));
    b.br(B::reg(bad_step), step_err, emit_code);

    b.setInsertPoint(step_err);
    const auto g_ec = b.load(AddrExpr::makeObject(errlog));
    const auto g_ec2 = b.add(B::reg(g_ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(g_ec2));
    b.jmp(emit_code);

    b.setInsertPoint(emit_code);
    const auto code = b.bor(B::reg(sign), B::reg(level));
    b.store(AddrExpr::makeObject(codes, B::reg(i)), B::reg(code));

    // Reconstruct the prediction (register state updates only).
    const auto delta = b.mul(B::reg(level), B::reg(step));
    const auto half = b.div(B::reg(step), B::imm(2));
    const auto change = b.add(B::reg(delta), B::reg(half));
    const auto signed_change =
        b.select(B::reg(sign), B::reg(b.neg(B::reg(change))),
                 B::reg(change));
    b.emitTo(valpred, Opcode::Add, B::reg(valpred), B::reg(signed_change));

    // Step-index adaptation, clamped to [0, 15].
    const auto fast = b.cmpGt(B::reg(level), B::imm(4));
    const auto adj = b.select(B::reg(fast), B::imm(2), B::imm(-1));
    const auto raw = b.add(B::reg(index), B::reg(adj));
    const auto lo = b.cmpLt(B::reg(raw), B::imm(0));
    const auto floored = b.select(B::reg(lo), B::imm(0), B::reg(raw));
    const auto hi = b.cmpGt(B::reg(floored), B::imm(15));
    b.emitTo(index, Opcode::Select, B::reg(hi), B::imm(15),
             B::reg(floored));

    b.addTo(i, B::reg(i), B::imm(1));
    const auto ec = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(ec), enc_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto cv = b.load(AddrExpr::makeObject(codes, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(cv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

std::unique_ptr<ir::Module>
buildG721Decode()
{
    auto module = std::make_unique<ir::Module>("g721decode");
    B b(module.get());

    const auto steps = emitStepTable(b);
    const auto codes = b.global("codes", 512);
    const auto pcm = b.global("pcm", 512);
    const auto result = b.global("result", 1);
    emitInitSteps(b, steps);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *decode = b.newBlock("decode");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    b.callVoid("init_steps", {});
    const auto i = b.mov(B::imm(0));
    const auto valpred = b.mov(B::imm(0));
    const auto index = b.mov(B::imm(4));
    const auto acc = b.mov(B::imm(0));
    // Stream pointers the decoder cannot statically tell apart.
    const auto pcodes = b.lea(AddrExpr::makeObject(codes));
    const auto ppcm = b.lea(AddrExpr::makeObject(pcm));
    const auto one = b.mov(B::imm(1));
    const auto out_ptr =
        b.select(B::reg(one), B::reg(ppcm), B::reg(pcodes));
    b.jmp(fill);

    b.setInsertPoint(fill);
    const auto c0 = b.mul(B::reg(i), B::imm(7));
    const auto code_v = b.band(B::reg(c0), B::imm(15));
    b.store(AddrExpr::makeObject(codes, B::reg(i)), B::reg(code_v));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill, decode);

    b.setInsertPoint(decode);
    b.movTo(i, B::imm(0));
    auto *dec_loop = b.newBlock("dec_loop");
    b.jmp(dec_loop);

    b.setInsertPoint(dec_loop);
    const auto code = b.load(AddrExpr::makeObject(codes, B::reg(i)));
    const auto level = b.band(B::reg(code), B::imm(7));
    const auto sign = b.band(B::reg(code), B::imm(8));
    const auto step = b.load(AddrExpr::makeObject(steps, B::reg(index)));
    const auto delta = b.mul(B::reg(level), B::reg(step));
    const auto half = b.div(B::reg(step), B::imm(2));
    const auto change = b.add(B::reg(delta), B::reg(half));
    const auto signed_change =
        b.select(B::reg(sign), B::reg(b.neg(B::reg(change))),
                 B::reg(change));
    b.emitTo(valpred, Opcode::Add, B::reg(valpred), B::reg(signed_change));
    b.store(AddrExpr::makeReg(out_ptr, B::reg(i)), B::reg(valpred));

    const auto fast = b.cmpGt(B::reg(level), B::imm(4));
    const auto adj = b.select(B::reg(fast), B::imm(2), B::imm(-1));
    const auto raw = b.add(B::reg(index), B::reg(adj));
    const auto lo = b.cmpLt(B::reg(raw), B::imm(0));
    const auto floored = b.select(B::reg(lo), B::imm(0), B::reg(raw));
    const auto hi = b.cmpGt(B::reg(floored), B::imm(15));
    b.emitTo(index, Opcode::Select, B::reg(hi), B::imm(15),
             B::reg(floored));

    b.addTo(i, B::reg(i), B::imm(1));
    const auto dc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(dc), dec_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto pv = b.load(AddrExpr::makeObject(pcm, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(pv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
