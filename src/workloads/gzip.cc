/**
 * @file
 * 164.gzip — LZ77-style compression kernel (SPEC2K-INT stand-in).
 *
 * Idempotence character: the deflate loop maintains hash-chain heads in
 * place (`head[h]` is read to find the previous candidate and then
 * overwritten with the current position — a classic WAR that Encore
 * must checkpoint), while the literal/match emission writes to disjoint
 * output arrays (idempotent). Periodic calls to an opaque flush routine
 * leave their region Unknown, reproducing gzip's "library call" slice
 * of Figure 5.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildGzip()
{
    auto module = std::make_unique<ir::Module>("164.gzip");
    B b(module.get());

    const auto input = b.global("input", 512);
    const auto head = b.global("head", 64);
    const auto lit_out = b.global("lit_out", 512);
    const auto match_out = b.global("match_out", 512);
    const auto iobuf = b.global("iobuf", 16);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    // --- fill_input(n): deterministic pseudo-random bytes -----------------
    {
        b.beginFunction("fill_input", 1);
        auto *loop = b.newBlock("loop");
        auto *done = b.newBlock("done");
        const auto i = b.mov(B::imm(0));
        const auto seed = b.mov(B::imm(88172645463325252LL));
        b.jmp(loop);

        b.setInsertPoint(loop);
        const auto s1 = b.mul(B::reg(seed), B::imm(6364136223846793005LL));
        b.emitTo(seed, Opcode::Add, B::reg(s1),
                 B::imm(1442695040888963407LL));
        const auto sh = b.shr(B::reg(seed), B::imm(33));
        const auto byte = b.band(B::reg(sh), B::imm(31));
        b.store(AddrExpr::makeObject(input, B::reg(i)), B::reg(byte));
        b.addTo(i, B::reg(i), B::imm(1));
        const auto c = b.cmpLt(B::reg(i), B::reg(0));
        b.br(B::reg(c), loop, done);

        b.setInsertPoint(done);
        b.ret(B::imm(0));
        b.endFunction();
    }

    // --- flush_block(pos): opaque "library" output routine ------------------
    {
        b.beginFunction("flush_block", 1);
        const auto slot = b.band(B::reg(0), B::imm(15));
        b.store(AddrExpr::makeObject(iobuf, B::reg(slot)), B::reg(0));
        b.ret(B::imm(0));
        b.endFunction();
    }

    // --- main(n) --------------------------------------------------------------
    b.beginFunction("main", 1);
    auto *deflate = b.newBlock("deflate");
    auto *try_match = b.newBlock("try_match");
    auto *match_init = b.newBlock("match_init");
    auto *match_step = b.newBlock("match_step");
    auto *match_cmp = b.newBlock("match_cmp");
    auto *match_emit = b.newBlock("match_emit");
    auto *literal = b.newBlock("literal");
    auto *maybe_flush = b.newBlock("maybe_flush");
    auto *do_flush = b.newBlock("do_flush");
    auto *next = b.newBlock("next");
    auto *sum_init = b.newBlock("sum_init");
    auto *sum_loop = b.newBlock("sum_loop");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0; // r0
    b.callVoid("fill_input", {B::reg(n)});
    // Output streams handled through pointers the compiler cannot
    // statically separate from each other.
    const auto plit = b.lea(AddrExpr::makeObject(lit_out));
    const auto pmatch = b.lea(AddrExpr::makeObject(match_out));
    const auto one = b.mov(B::imm(1));
    const auto lit_ptr =
        b.select(B::reg(one), B::reg(plit), B::reg(pmatch));
    const auto match_ptr =
        b.select(B::reg(one), B::reg(pmatch), B::reg(plit));
    const auto i = b.mov(B::imm(2));
    const auto j = b.mov(B::imm(0));
    const auto prev = b.mov(B::imm(0));
    const auto cur = b.mov(B::imm(0));
    b.jmp(deflate);

    // deflate: hash the trailing 3 bytes, probe and update the chain.
    b.setInsertPoint(deflate);
    const auto i2 = b.sub(B::reg(i), B::imm(2));
    const auto i1 = b.sub(B::reg(i), B::imm(1));
    const auto b0 = b.load(AddrExpr::makeObject(input, B::reg(i2)));
    const auto b1 = b.load(AddrExpr::makeObject(input, B::reg(i1)));
    b.movTo(cur, B::reg(b.load(AddrExpr::makeObject(input, B::reg(i)))));
    const auto h0 = b.mul(B::reg(b0), B::imm(33));
    const auto h1 = b.add(B::reg(h0), B::reg(b1));
    const auto h2 = b.mul(B::reg(h1), B::imm(33));
    const auto h3 = b.add(B::reg(h2), B::reg(cur));
    const auto h = b.band(B::reg(h3), B::imm(63));
    // WAR: read the chain head, then overwrite it with our position.
    b.movTo(prev, B::reg(b.load(AddrExpr::makeObject(head, B::reg(h)))));
    b.store(AddrExpr::makeObject(head, B::reg(h)), B::reg(i));
    const auto has_prev = b.cmpGt(B::reg(prev), B::imm(0));
    b.br(B::reg(has_prev), try_match, literal);

    // try_match: the candidate must start with the same byte.
    b.setInsertPoint(try_match);
    const auto cand = b.load(AddrExpr::makeObject(input, B::reg(prev)));
    const auto same = b.cmpEq(B::reg(cand), B::reg(cur));
    b.br(B::reg(same), match_init, literal);

    b.setInsertPoint(match_init);
    b.movTo(j, B::imm(1));
    b.jmp(match_step);

    // match_step: stop at length 4 or end of input.
    b.setInsertPoint(match_step);
    const auto at_limit = b.cmpGe(B::reg(j), B::imm(4));
    const auto ipj = b.add(B::reg(i), B::reg(j));
    const auto past_end = b.cmpGe(B::reg(ipj), B::reg(n));
    const auto stop = b.bor(B::reg(at_limit), B::reg(past_end));
    b.br(B::reg(stop), match_emit, match_cmp);

    b.setInsertPoint(match_cmp);
    const auto ppj = b.add(B::reg(prev), B::reg(j));
    const auto a_byte = b.load(AddrExpr::makeObject(input, B::reg(ppj)));
    const auto ipj2 = b.add(B::reg(i), B::reg(j));
    const auto b_byte = b.load(AddrExpr::makeObject(input, B::reg(ipj2)));
    const auto eq = b.cmpEq(B::reg(a_byte), B::reg(b_byte));
    b.addTo(j, B::reg(j), B::imm(1));
    b.br(B::reg(eq), match_step, match_emit);

    // Overflow guard: can never fire (j <= 4), but the error counter
    // bump is a WAR that only Pmin pruning can dismiss — the paper's
    // "dynamically dead" code.
    auto *match_err = b.newBlock("match_err");
    auto *match_store = b.newBlock("match_store");
    b.setInsertPoint(match_emit);
    const auto insane = b.cmpGt(B::reg(j), B::imm(64));
    b.br(B::reg(insane), match_err, match_store);

    b.setInsertPoint(match_err);
    const auto ec = b.load(AddrExpr::makeObject(errlog));
    const auto ec2 = b.add(B::reg(ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(ec2));
    b.jmp(match_store);

    b.setInsertPoint(match_store);
    b.store(AddrExpr::makeReg(match_ptr, B::reg(i)), B::reg(j));
    b.jmp(maybe_flush);

    b.setInsertPoint(literal);
    b.store(AddrExpr::makeReg(lit_ptr, B::reg(i)), B::reg(cur));
    b.jmp(maybe_flush);

    // Every 64 positions, call the opaque output routine.
    b.setInsertPoint(maybe_flush);
    const auto low = b.band(B::reg(i), B::imm(63));
    const auto is_flush = b.cmpEq(B::reg(low), B::imm(0));
    b.br(B::reg(is_flush), do_flush, next);

    b.setInsertPoint(do_flush);
    b.callVoid("flush_block", {B::reg(i)});
    b.jmp(next);

    b.setInsertPoint(next);
    b.addTo(i, B::reg(i), B::imm(1));
    const auto more = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(more), deflate, sum_init);

    // Checksum both output streams.
    b.setInsertPoint(sum_init);
    const auto k = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(sum_loop);

    b.setInsertPoint(sum_loop);
    const auto lv = b.load(AddrExpr::makeObject(lit_out, B::reg(k)));
    const auto mv = b.load(AddrExpr::makeObject(match_out, B::reg(k)));
    const auto three = b.mul(B::reg(acc), B::imm(3));
    const auto plus = b.add(B::reg(three), B::reg(lv));
    b.emitTo(acc, Opcode::Add, B::reg(plus), B::reg(mv));
    b.addTo(k, B::reg(k), B::imm(1));
    const auto klt = b.cmpLt(B::reg(k), B::reg(n));
    b.br(B::reg(klt), sum_loop, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result, B::imm(0)), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
