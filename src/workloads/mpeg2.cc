/**
 * @file
 * mpeg2dec / mpeg2enc — MPEG-2 video kernels (Mediabench stand-ins).
 *
 * Decoder: motion compensation reads the reference frame and the
 * residual, writes the current frame with saturation (idempotent).
 * Encoder: block-matching motion search is a read-only SAD scan; the
 * reconstruction writes a separate frame; a small rate-control word is
 * updated in place (one cheap WAR per macroblock).
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildMpeg2Dec()
{
    auto module = std::make_unique<ir::Module>("mpeg2dec");
    B b(module.get());

    const auto ref = b.global("ref", 256);
    const auto residual = b.global("residual", 256);
    const auto frame = b.global("frame", 256);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *mc = b.newBlock("mc");
    auto *mc_loop = b.newBlock("mc_loop");
    auto *sat_hi = b.newBlock("sat_hi");
    auto *sat_ok = b.newBlock("sat_ok");
    auto *mc_next = b.newBlock("mc_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(fill);

    b.setInsertPoint(fill);
    const auto r0 = b.mul(B::reg(i), B::imm(19));
    const auto rv = b.band(B::reg(r0), B::imm(255));
    b.store(AddrExpr::makeObject(ref, B::reg(i)), B::reg(rv));
    const auto d0 = b.mul(B::reg(i), B::imm(7));
    const auto d1 = b.band(B::reg(d0), B::imm(63));
    const auto dv = b.sub(B::reg(d1), B::imm(32));
    b.store(AddrExpr::makeObject(residual, B::reg(i)), B::reg(dv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::imm(256));
    b.br(B::reg(fc), fill, mc);

    // Motion compensation over n macroblock rows.
    b.setInsertPoint(mc);
    const auto row = b.mov(B::imm(0));
    b.movTo(i, B::imm(0));
    b.jmp(mc_loop);

    b.setInsertPoint(mc_loop);
    // Motion vector derived from the row index.
    const auto mv0 = b.mul(B::reg(row), B::imm(3));
    const auto mv = b.band(B::reg(mv0), B::imm(15));
    const auto src0 = b.add(B::reg(i), B::reg(mv));
    const auto src = b.band(B::reg(src0), B::imm(255));
    const auto pred = b.load(AddrExpr::makeObject(ref, B::reg(src)));
    const auto res = b.load(AddrExpr::makeObject(residual, B::reg(i)));
    const auto raw = b.add(B::reg(pred), B::reg(res));
    const auto over = b.cmpGt(B::reg(raw), B::imm(255));
    b.br(B::reg(over), sat_hi, sat_ok);

    b.setInsertPoint(sat_hi);
    b.store(AddrExpr::makeObject(frame, B::reg(i)), B::imm(255));
    b.jmp(mc_next);

    b.setInsertPoint(sat_ok);
    const auto under = b.cmpLt(B::reg(raw), B::imm(0));
    const auto clamped = b.select(B::reg(under), B::imm(0), B::reg(raw));
    b.store(AddrExpr::makeObject(frame, B::reg(i)), B::reg(clamped));
    b.jmp(mc_next);

    b.setInsertPoint(mc_next);
    b.addTo(i, B::reg(i), B::imm(1));
    const auto wrap = b.cmpGe(B::reg(i), B::imm(256));
    const auto next_i = b.select(B::reg(wrap), B::imm(0), B::reg(i));
    b.movTo(i, B::reg(next_i));
    const auto bump = b.select(B::reg(wrap), B::imm(1), B::imm(0));
    b.emitTo(row, Opcode::Add, B::reg(row), B::reg(bump));
    const auto more = b.cmpLt(B::reg(row), B::reg(n));
    b.br(B::reg(more), mc_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto fv = b.load(AddrExpr::makeObject(frame, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(fv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(256));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

std::unique_ptr<ir::Module>
buildMpeg2Enc()
{
    auto module = std::make_unique<ir::Module>("mpeg2enc");
    B b(module.get());

    const auto cur = b.global("cur", 256);
    const auto ref = b.global("ref", 256);
    const auto mv_out = b.global("mv_out", 64);
    const auto recon = b.global("recon", 256);
    const auto rate = b.global("rate", 1);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *blocks = b.newBlock("blocks");
    auto *search = b.newBlock("search");
    auto *sad = b.newBlock("sad");
    auto *sad_abs = b.newBlock("sad_abs");
    auto *sad_acc = b.newBlock("sad_acc");
    auto *sad_done = b.newBlock("sad_done");
    auto *better = b.newBlock("better");
    auto *cand_next = b.newBlock("cand_next");
    auto *recon_blk = b.newBlock("recon_blk");
    auto *blk_next = b.newBlock("blk_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto blk = b.mov(B::imm(0));
    const auto cand = b.mov(B::imm(0));
    const auto best = b.mov(B::imm(0));
    const auto best_mv = b.mov(B::imm(0));
    const auto dist = b.mov(B::imm(0));
    const auto k = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(fill);

    b.setInsertPoint(fill);
    const auto c0 = b.mul(B::reg(i), B::imm(23));
    const auto cv = b.band(B::reg(c0), B::imm(255));
    b.store(AddrExpr::makeObject(cur, B::reg(i)), B::reg(cv));
    const auto r0 = b.mul(B::reg(i), B::imm(21));
    const auto rv = b.band(B::reg(r0), B::imm(255));
    b.store(AddrExpr::makeObject(ref, B::reg(i)), B::reg(rv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::imm(256));
    b.br(B::reg(fc), fill, blocks);

    // Per macroblock (n of them, wrapping over 32 block slots).
    b.setInsertPoint(blocks);
    b.movTo(cand, B::imm(0));
    b.movTo(best, B::imm(1048576));
    b.movTo(best_mv, B::imm(0));
    b.jmp(search);

    // Try 4 candidate motion vectors.
    b.setInsertPoint(search);
    b.movTo(dist, B::imm(0));
    b.movTo(k, B::imm(0));
    b.jmp(sad);

    // 8-pixel SAD for this candidate.
    b.setInsertPoint(sad);
    const auto base0 = b.band(B::reg(blk), B::imm(31));
    const auto base = b.shl(B::reg(base0), B::imm(3));
    const auto cidx0 = b.add(B::reg(base), B::reg(k));
    const auto cidx = b.band(B::reg(cidx0), B::imm(255));
    const auto cpx = b.load(AddrExpr::makeObject(cur, B::reg(cidx)));
    const auto shift = b.mul(B::reg(cand), B::imm(5));
    const auto ridx0 = b.add(B::reg(cidx0), B::reg(shift));
    const auto ridx = b.band(B::reg(ridx0), B::imm(255));
    const auto rpx = b.load(AddrExpr::makeObject(ref, B::reg(ridx)));
    const auto d = b.sub(B::reg(cpx), B::reg(rpx));
    const auto dneg = b.cmpLt(B::reg(d), B::imm(0));
    b.br(B::reg(dneg), sad_abs, sad_acc);

    b.setInsertPoint(sad_abs);
    const auto nd = b.neg(B::reg(d));
    b.emitTo(dist, Opcode::Add, B::reg(dist), B::reg(nd));
    b.jmp(sad_done);

    b.setInsertPoint(sad_acc);
    b.emitTo(dist, Opcode::Add, B::reg(dist), B::reg(d));
    b.jmp(sad_done);

    b.setInsertPoint(sad_done);
    b.addTo(k, B::reg(k), B::imm(1));
    const auto kc = b.cmpLt(B::reg(k), B::imm(8));
    b.br(B::reg(kc), sad, better);

    b.setInsertPoint(better);
    // SAD sanity guard: 8 pixels of 8 bits can never exceed 2048 —
    // dynamically dead error handling around the search kernel.
    auto *sad_err = b.newBlock("sad_err");
    auto *better_cmp = b.newBlock("better_cmp");
    const auto impossible = b.cmpGt(B::reg(dist), B::imm(2048));
    b.br(B::reg(impossible), sad_err, better_cmp);

    b.setInsertPoint(sad_err);
    const auto ec = b.load(AddrExpr::makeObject(errlog));
    const auto ec2 = b.add(B::reg(ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(ec2));
    b.jmp(better_cmp);

    b.setInsertPoint(better_cmp);
    const auto improves = b.cmpLt(B::reg(dist), B::reg(best));
    const auto nb = b.select(B::reg(improves), B::reg(dist), B::reg(best));
    b.movTo(best, B::reg(nb));
    const auto nm = b.select(B::reg(improves), B::reg(cand),
                             B::reg(best_mv));
    b.movTo(best_mv, B::reg(nm));
    b.jmp(cand_next);

    b.setInsertPoint(cand_next);
    b.addTo(cand, B::reg(cand), B::imm(1));
    const auto cc = b.cmpLt(B::reg(cand), B::imm(4));
    b.br(B::reg(cc), search, recon_blk);

    // Write the motion vector and reconstruct; bump the in-memory rate
    // controller (the encoder's one WAR).
    b.setInsertPoint(recon_blk);
    const auto slot = b.band(B::reg(blk), B::imm(31));
    b.store(AddrExpr::makeObject(mv_out, B::reg(slot)), B::reg(best_mv));
    const auto rbase = b.shl(B::reg(slot), B::imm(3));
    const auto rmask = b.band(B::reg(rbase), B::imm(255));
    const auto px = b.load(AddrExpr::makeObject(ref, B::reg(rmask)));
    b.store(AddrExpr::makeObject(recon, B::reg(rmask)), B::reg(px));
    const auto rc0 = b.load(AddrExpr::makeObject(rate));
    const auto rc1 = b.add(B::reg(rc0), B::reg(best));
    b.store(AddrExpr::makeObject(rate), B::reg(rc1));
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(best));
    b.jmp(blk_next);

    b.setInsertPoint(blk_next);
    b.addTo(blk, B::reg(blk), B::imm(1));
    const auto more = b.cmpLt(B::reg(blk), B::reg(n));
    b.br(B::reg(more), blocks, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto mv = b.load(AddrExpr::makeObject(mv_out, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(mv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto uc = b.cmpLt(B::reg(i), B::imm(64));
    b.br(B::reg(uc), reduce, done);

    b.setInsertPoint(done);
    const auto ratev = b.load(AddrExpr::makeObject(rate));
    const auto out = b.bxor(B::reg(acc), B::reg(ratev));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
