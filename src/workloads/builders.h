/**
 * @file
 * Internal: one builder function per synthetic benchmark. Each returns
 * a fresh module whose @main(1) takes a scale argument. See workload.h
 * for the design rationale.
 */
#ifndef ENCORE_WORKLOADS_BUILDERS_H
#define ENCORE_WORKLOADS_BUILDERS_H

#include <memory>

#include "ir/module.h"

namespace encore::workloads {

// SPEC2K-INT
std::unique_ptr<ir::Module> buildGzip();
std::unique_ptr<ir::Module> buildVpr();
std::unique_ptr<ir::Module> buildMcf();
std::unique_ptr<ir::Module> buildParser();
std::unique_ptr<ir::Module> buildBzip2();
std::unique_ptr<ir::Module> buildTwolf();

// SPEC2K-FP
std::unique_ptr<ir::Module> buildMgrid();
std::unique_ptr<ir::Module> buildApplu();
std::unique_ptr<ir::Module> buildMesa();
std::unique_ptr<ir::Module> buildArt();
std::unique_ptr<ir::Module> buildEquake();

// MEDIABENCH
std::unique_ptr<ir::Module> buildCjpeg();
std::unique_ptr<ir::Module> buildDjpeg();
std::unique_ptr<ir::Module> buildEpic();
std::unique_ptr<ir::Module> buildUnepic();
std::unique_ptr<ir::Module> buildG721Decode();
std::unique_ptr<ir::Module> buildG721Encode();
std::unique_ptr<ir::Module> buildMpeg2Dec();
std::unique_ptr<ir::Module> buildMpeg2Enc();
std::unique_ptr<ir::Module> buildPegwitDec();
std::unique_ptr<ir::Module> buildPegwitEnc();
std::unique_ptr<ir::Module> buildRawCAudio();
std::unique_ptr<ir::Module> buildRawDAudio();

} // namespace encore::workloads

#endif // ENCORE_WORKLOADS_BUILDERS_H
