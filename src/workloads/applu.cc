/**
 * @file
 * 173.applu — SSOR-style solver sweeps (SPEC2K-FP stand-in).
 *
 * The forward/backward sweeps read one half of the solution vector and
 * write the other half of the *same* object through register offsets.
 * Static alias analysis cannot separate the halves (same base, unknown
 * offsets), so the writes look like WARs and get checkpointed; the
 * profile-guided optimistic analysis observes disjoint address sets and
 * drops them — one of the drivers of Figure 7a's static-vs-optimistic
 * gap.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildApplu()
{
    auto module = std::make_unique<ir::Module>("173.applu");
    B b(module.get());

    const auto coef = b.global("coef", 32);
    const auto sol = b.global("sol", 64); // halves [0,32) and [32,64)
    const auto resid = b.global("resid", 8);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *init = b.newBlock("init");
    auto *sweeps = b.newBlock("sweeps");
    auto *fwd = b.newBlock("fwd");
    auto *bwd_init = b.newBlock("bwd_init");
    auto *bwd = b.newBlock("bwd");
    auto *relax_init = b.newBlock("relax_init");
    auto *relax = b.newBlock("relax");
    auto *sweep_next = b.newBlock("sweep_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto s = b.mov(B::imm(0));
    const auto sum = b.mov(B::fpImm(0.0));
    const auto omega = b.mov(B::fpImm(0.8));
    b.jmp(init);

    b.setInsertPoint(init);
    const auto fi = b.i2f(B::reg(i));
    const auto c = b.fmul(B::reg(fi), B::fpImm(0.03125));
    b.store(AddrExpr::makeObject(coef, B::reg(i)), B::reg(c));
    b.store(AddrExpr::makeObject(sol, B::reg(i)), B::reg(c));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto ic = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(ic), init, sweeps);

    b.setInsertPoint(sweeps);
    b.movTo(i, B::imm(0));
    b.jmp(fwd);

    // Forward sweep: sol[32+i] = omega * sol[i] + coef[i].
    b.setInsertPoint(fwd);
    const auto lo = b.load(AddrExpr::makeObject(sol, B::reg(i)));
    const auto cf = b.load(AddrExpr::makeObject(coef, B::reg(i)));
    const auto relaxed = b.fmul(B::reg(lo), B::reg(omega));
    const auto upd = b.fadd(B::reg(relaxed), B::reg(cf));
    const auto hi_idx = b.add(B::reg(i), B::imm(32));
    b.store(AddrExpr::makeObject(sol, B::reg(hi_idx)), B::reg(upd));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(fc), fwd, bwd_init);

    b.setInsertPoint(bwd_init);
    b.movTo(i, B::imm(0));
    b.jmp(bwd);

    // Backward sweep: sol[i] = omega * sol[32+i] + coef[i].
    b.setInsertPoint(bwd);
    const auto hi_idx2 = b.add(B::reg(i), B::imm(32));
    const auto hiv = b.load(AddrExpr::makeObject(sol, B::reg(hi_idx2)));
    const auto cf2 = b.load(AddrExpr::makeObject(coef, B::reg(i)));
    const auto relaxed2 = b.fmul(B::reg(hiv), B::reg(omega));
    const auto upd2 = b.fadd(B::reg(relaxed2), B::reg(cf2));
    b.store(AddrExpr::makeObject(sol, B::reg(i)), B::reg(upd2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto bc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(bc), bwd, relax_init);

    // Small in-place residual relaxation: genuine WARs, cheap to
    // checkpoint (8 words).
    b.setInsertPoint(relax_init);
    b.movTo(i, B::imm(0));
    b.jmp(relax);

    b.setInsertPoint(relax);
    const auto rv = b.load(AddrExpr::makeObject(resid, B::reg(i)));
    const auto sv = b.load(AddrExpr::makeObject(sol, B::reg(i)));
    const auto mixed = b.fadd(B::reg(rv), B::reg(sv));
    const auto damped = b.fmul(B::reg(mixed), B::fpImm(0.5));
    b.store(AddrExpr::makeObject(resid, B::reg(i)), B::reg(damped));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(8));
    b.br(B::reg(rc), relax, sweep_next);

    b.setInsertPoint(sweep_next);
    b.addTo(s, B::reg(s), B::imm(1));
    const auto rounds = b.shr(B::reg(n), B::imm(4));
    const auto sc = b.cmpLt(B::reg(s), B::reg(rounds));
    b.br(B::reg(sc), sweeps, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto out_v = b.load(AddrExpr::makeObject(sol, B::reg(i)));
    b.emitTo(sum, Opcode::FAdd, B::reg(sum), B::reg(out_v));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto uc = b.cmpLt(B::reg(i), B::imm(64));
    b.br(B::reg(uc), reduce, done);

    b.setInsertPoint(done);
    const auto scaled = b.fmul(B::reg(sum), B::fpImm(4096.0));
    const auto out = b.f2i(B::reg(scaled));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
