/**
 * @file
 * pegwitenc / pegwitdec — elliptic-curve-flavoured block cipher
 * (Mediabench stand-ins).
 *
 * A sponge-like permutation state lives in memory and is mutated in
 * place for every processed block — per-round WARs whose undo log
 * scales with the input length, pushing the cipher loop past the
 * storage budget. The I/O staging loops around it remain idempotent,
 * giving pegwit its partially-protected profile.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;

/// Emits the shared sponge step: absorbs one word into state[slot].
void
emitAbsorb(B &b, ir::ObjectId state)
{
    b.beginFunction("absorb", 2); // (slot, word)
    const auto old = b.load(AddrExpr::makeObject(state, B::reg(0)));
    const auto mixed = b.bxor(B::reg(old), B::reg(1));
    const auto rot0 = b.shl(B::reg(mixed), B::imm(13));
    const auto rot1 = b.shr(B::reg(mixed), B::imm(51));
    const auto rotated = b.bor(B::reg(rot0), B::reg(rot1));
    const auto scrambled =
        b.mul(B::reg(rotated), B::imm(0x9E3779B97F4A7C15LL));
    b.store(AddrExpr::makeObject(state, B::reg(0)), B::reg(scrambled));
    b.ret(B::reg(scrambled));
    b.endFunction();
}

std::unique_ptr<ir::Module>
buildPegwit(const char *name, bool decrypt)
{
    auto module = std::make_unique<ir::Module>(name);
    B b(module.get());

    const auto state = b.global("state", 8);
    const auto text_in = b.global("text_in", 256);
    const auto text_out = b.global("text_out", 256);
    const auto result = b.global("result", 1);
    emitAbsorb(b, state);

    b.beginFunction("main", 1);
    auto *key_init = b.newBlock("key_init");
    auto *fill = b.newBlock("fill");
    auto *crypt = b.newBlock("crypt");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(key_init);

    b.setInsertPoint(key_init);
    const auto seed0 = b.mul(B::reg(i), B::imm(0xA24BAED4963EE407LL));
    const auto seed1 = b.add(B::reg(seed0), B::imm(97));
    b.store(AddrExpr::makeObject(state, B::reg(i)), B::reg(seed1));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto kc = b.cmpLt(B::reg(i), B::imm(8));
    b.br(B::reg(kc), key_init, fill);

    b.setInsertPoint(fill);
    b.movTo(i, B::imm(0));
    auto *fill_loop = b.newBlock("fill_loop");
    b.jmp(fill_loop);

    b.setInsertPoint(fill_loop);
    const auto w0 = b.mul(B::reg(i), B::imm(0x100000001B3LL));
    const auto w1 = b.bxor(B::reg(w0), B::imm(0xCBF29CE484222325LL));
    b.store(AddrExpr::makeObject(text_in, B::reg(i)), B::reg(w1));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill_loop, crypt);

    // crypt: every word is absorbed into the rotating sponge state and
    // the keystream is xored with the text.
    b.setInsertPoint(crypt);
    b.movTo(i, B::imm(0));
    auto *crypt_loop = b.newBlock("crypt_loop");
    b.jmp(crypt_loop);

    b.setInsertPoint(crypt_loop);
    const auto word = b.load(AddrExpr::makeObject(text_in, B::reg(i)));
    const auto slot = b.band(B::reg(i), B::imm(7));
    const auto ks = decrypt
                        ? b.call("absorb", {B::reg(slot), B::reg(i)})
                        : b.call("absorb", {B::reg(slot), B::reg(word)});
    const auto cipher = b.bxor(B::reg(word), B::reg(ks));
    b.store(AddrExpr::makeObject(text_out, B::reg(i)), B::reg(cipher));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto cc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(cc), crypt_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto ov = b.load(AddrExpr::makeObject(text_out, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(ov));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    const auto s3 = b.load(AddrExpr::makeObject(state, B::imm(3)));
    const auto out = b.bxor(B::reg(acc), B::reg(s3));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace

std::unique_ptr<ir::Module>
buildPegwitEnc()
{
    return buildPegwit("pegwitenc", false);
}

std::unique_ptr<ir::Module>
buildPegwitDec()
{
    return buildPegwit("pegwitdec", true);
}

} // namespace encore::workloads
