/**
 * @file
 * epic — wavelet pyramid image coder (Mediabench stand-in).
 *
 * Builds a two-level wavelet pyramid: each level reads one buffer and
 * writes coarse/detail halves of another. The quantization pass writes
 * the detail half of the same object it reads through register
 * offsets — disambiguatable only by the optimistic alias analysis,
 * contributing to Figure 7a's gap.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildEpic()
{
    auto module = std::make_unique<ir::Module>("epic");
    B b(module.get());

    const auto image = b.global("image", 64);
    const auto level1 = b.global("level1", 64); // [0,32) coarse, [32,64) detail
    const auto level2 = b.global("level2", 32); // [0,16) coarse, [16,32) detail
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *rounds = b.newBlock("rounds");
    auto *wave1 = b.newBlock("wave1");
    auto *wave2_init = b.newBlock("wave2_init");
    auto *wave2 = b.newBlock("wave2");
    auto *quant_init = b.newBlock("quant_init");
    auto *quant = b.newBlock("quant");
    auto *round_next = b.newBlock("round_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto r = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(fill);

    b.setInsertPoint(fill);
    const auto px0 = b.mul(B::reg(i), B::imm(29));
    const auto px = b.band(B::reg(px0), B::imm(255));
    b.store(AddrExpr::makeObject(image, B::reg(i)), B::reg(px));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::imm(64));
    b.br(B::reg(fc), fill, rounds);

    b.setInsertPoint(rounds);
    b.movTo(i, B::imm(0));
    b.jmp(wave1);

    // Level 1: pairwise averages/differences image -> level1 halves.
    b.setInsertPoint(wave1);
    const auto two_i = b.shl(B::reg(i), B::imm(1));
    const auto two_i1 = b.add(B::reg(two_i), B::imm(1));
    const auto a = b.load(AddrExpr::makeObject(image, B::reg(two_i)));
    const auto c = b.load(AddrExpr::makeObject(image, B::reg(two_i1)));
    const auto avg0 = b.add(B::reg(a), B::reg(c));
    const auto avg = b.shr(B::reg(avg0), B::imm(1));
    const auto diff = b.sub(B::reg(a), B::reg(c));
    b.store(AddrExpr::makeObject(level1, B::reg(i)), B::reg(avg));
    const auto det_idx = b.add(B::reg(i), B::imm(32));
    b.store(AddrExpr::makeObject(level1, B::reg(det_idx)), B::reg(diff));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto w1c = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(w1c), wave1, wave2_init);

    b.setInsertPoint(wave2_init);
    b.movTo(i, B::imm(0));
    b.jmp(wave2);

    // Level 2: same transform over the coarse half of level1.
    b.setInsertPoint(wave2);
    const auto t2 = b.shl(B::reg(i), B::imm(1));
    const auto t21 = b.add(B::reg(t2), B::imm(1));
    const auto a2 = b.load(AddrExpr::makeObject(level1, B::reg(t2)));
    const auto c2 = b.load(AddrExpr::makeObject(level1, B::reg(t21)));
    const auto avg2_0 = b.add(B::reg(a2), B::reg(c2));
    const auto avg2 = b.shr(B::reg(avg2_0), B::imm(1));
    const auto diff2 = b.sub(B::reg(a2), B::reg(c2));
    b.store(AddrExpr::makeObject(level2, B::reg(i)), B::reg(avg2));
    const auto det2 = b.add(B::reg(i), B::imm(16));
    b.store(AddrExpr::makeObject(level2, B::reg(det2)), B::reg(diff2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto w2c = b.cmpLt(B::reg(i), B::imm(16));
    b.br(B::reg(w2c), wave2, quant_init);

    // Quantize detail coefficients of level1 in their own half: reads
    // [32+i], writes [32+i] — a WAR the static analysis must assume
    // can hit the coarse reads too (register offsets).
    b.setInsertPoint(quant_init);
    b.movTo(i, B::imm(0));
    b.jmp(quant);

    b.setInsertPoint(quant);
    const auto qidx = b.add(B::reg(i), B::imm(32));
    const auto dv = b.load(AddrExpr::makeObject(level1, B::reg(qidx)));
    const auto qv = b.div(B::reg(dv), B::imm(4));
    b.store(AddrExpr::makeObject(level1, B::reg(qidx)), B::reg(qv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto qc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(qc), quant, round_next);

    b.setInsertPoint(round_next);
    b.addTo(r, B::reg(r), B::imm(1));
    const auto total = b.shr(B::reg(n), B::imm(3));
    const auto more = b.cmpLt(B::reg(r), B::reg(total));
    b.br(B::reg(more), rounds, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto l1 = b.load(AddrExpr::makeObject(level1, B::reg(i)));
    const auto half_i = b.shr(B::reg(i), B::imm(1));
    const auto l2 = b.load(AddrExpr::makeObject(level2, B::reg(half_i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    const auto mix = b.add(B::reg(acc3), B::reg(l1));
    b.emitTo(acc, Opcode::Add, B::reg(mix), B::reg(l2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(64));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
