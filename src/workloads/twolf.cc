/**
 * @file
 * 300.twolf — standard-cell placement/routing kernel (SPEC2K-INT
 * stand-in).
 *
 * Control-heavy annealing over a grid: neighborhood cost scans are
 * read-only, accepted moves mutate the grid and the incremental
 * wirelength in place, and an opaque trace routine is called on a slow
 * path (twolf's Unknown slice in Figure 5).
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildTwolf()
{
    auto module = std::make_unique<ir::Module>("300.twolf");
    B b(module.get());

    const auto grid = b.global("grid", 64);
    const auto wire = b.global("wire", 1);
    const auto tracebuf = b.global("tracebuf", 8);
    const auto result = b.global("result", 1);

    // --- trace_move(x): opaque diagnostics sink ------------------------------
    {
        b.beginFunction("trace_move", 1);
        const auto slot = b.band(B::reg(0), B::imm(7));
        b.store(AddrExpr::makeObject(tracebuf, B::reg(slot)), B::reg(0));
        b.ret(B::imm(0));
        b.endFunction();
    }

    // --- neighborhood_cost(p): read-only 4-neighbor scan ----------------------
    {
        b.beginFunction("neighborhood_cost", 1);
        const auto left = b.sub(B::reg(0), B::imm(1));
        const auto lmask = b.band(B::reg(left), B::imm(63));
        const auto right = b.add(B::reg(0), B::imm(1));
        const auto rmask = b.band(B::reg(right), B::imm(63));
        const auto up = b.sub(B::reg(0), B::imm(8));
        const auto umask = b.band(B::reg(up), B::imm(63));
        const auto down = b.add(B::reg(0), B::imm(8));
        const auto dmask = b.band(B::reg(down), B::imm(63));
        const auto lv = b.load(AddrExpr::makeObject(grid, B::reg(lmask)));
        const auto rv = b.load(AddrExpr::makeObject(grid, B::reg(rmask)));
        const auto uv = b.load(AddrExpr::makeObject(grid, B::reg(umask)));
        const auto dv = b.load(AddrExpr::makeObject(grid, B::reg(dmask)));
        const auto h = b.add(B::reg(lv), B::reg(rv));
        const auto v = b.add(B::reg(uv), B::reg(dv));
        const auto cost = b.add(B::reg(h), B::reg(v));
        b.ret(B::reg(cost));
        b.endFunction();
    }

    // --- main(n) ------------------------------------------------------------------
    b.beginFunction("main", 1);
    auto *seed_grid = b.newBlock("seed_grid");
    auto *anneal = b.newBlock("anneal");
    auto *apply = b.newBlock("apply");
    auto *trace = b.newBlock("trace");
    auto *next = b.newBlock("next");
    auto *readback = b.newBlock("readback");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto k = b.mov(B::imm(0));
    const auto seed = b.mov(B::imm(0x853C49E6748FEA9BLL));
    const auto acc = b.mov(B::imm(0));
    const auto t = b.mov(B::imm(0));
    b.jmp(seed_grid);

    b.setInsertPoint(seed_grid);
    const auto g0 = b.mul(B::reg(k), B::imm(11));
    const auto g1 = b.band(B::reg(g0), B::imm(31));
    b.store(AddrExpr::makeObject(grid, B::reg(k)), B::reg(g1));
    b.addTo(k, B::reg(k), B::imm(1));
    const auto kc = b.cmpLt(B::reg(k), B::imm(64));
    b.br(B::reg(kc), seed_grid, anneal);

    b.setInsertPoint(anneal);
    const auto s1 = b.mul(B::reg(seed), B::imm(6364136223846793005LL));
    b.emitTo(seed, Opcode::Add, B::reg(s1), B::imm(1442695040888963407LL));
    const auto sa = b.shr(B::reg(seed), B::imm(10));
    const auto pa = b.band(B::reg(sa), B::imm(63));
    const auto sb = b.shr(B::reg(seed), B::imm(22));
    const auto pb = b.band(B::reg(sb), B::imm(63));
    const auto ca = b.call("neighborhood_cost", {B::reg(pa)});
    const auto cb = b.call("neighborhood_cost", {B::reg(pb)});
    const auto gain = b.sub(B::reg(ca), B::reg(cb));
    const auto improves = b.cmpGt(B::reg(gain), B::imm(2));
    b.br(B::reg(improves), apply, next);

    // apply: swap the two cells, bump the wirelength — in-place WARs.
    b.setInsertPoint(apply);
    const auto va = b.load(AddrExpr::makeObject(grid, B::reg(pa)));
    const auto vb = b.load(AddrExpr::makeObject(grid, B::reg(pb)));
    b.store(AddrExpr::makeObject(grid, B::reg(pa)), B::reg(vb));
    b.store(AddrExpr::makeObject(grid, B::reg(pb)), B::reg(va));
    const auto w = b.load(AddrExpr::makeObject(wire));
    const auto w2 = b.add(B::reg(w), B::reg(gain));
    b.store(AddrExpr::makeObject(wire), B::reg(w2));
    const auto big = b.cmpGt(B::reg(gain), B::imm(24));
    b.br(B::reg(big), trace, next);

    b.setInsertPoint(trace);
    b.callVoid("trace_move", {B::reg(gain)});
    b.jmp(next);

    b.setInsertPoint(next);
    b.addTo(t, B::reg(t), B::imm(1));
    const auto more = b.cmpLt(B::reg(t), B::reg(n));
    b.br(B::reg(more), anneal, readback);

    b.setInsertPoint(readback);
    b.movTo(k, B::imm(0));
    auto *rb_loop = b.newBlock("rb_loop");
    b.jmp(rb_loop);

    b.setInsertPoint(rb_loop);
    const auto gv = b.load(AddrExpr::makeObject(grid, B::reg(k)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(gv));
    b.addTo(k, B::reg(k), B::imm(1));
    const auto rc = b.cmpLt(B::reg(k), B::imm(64));
    b.br(B::reg(rc), rb_loop, done);

    b.setInsertPoint(done);
    const auto wv = b.load(AddrExpr::makeObject(wire));
    const auto out = b.bxor(B::reg(acc), B::reg(wv));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
