/**
 * @file
 * unepic — wavelet pyramid reconstruction (Mediabench stand-in).
 *
 * The inverse of epic: reconstructs each level from coarse + detail
 * halves into a fresh buffer. Pure gather/compute/scatter with no
 * in-place updates — the most idempotent workload in the suite.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildUnepic()
{
    auto module = std::make_unique<ir::Module>("unepic");
    B b(module.get());

    const auto level2 = b.global("level2", 32);
    const auto level1 = b.global("level1", 64);
    const auto image = b.global("image", 64);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *fill = b.newBlock("fill");
    auto *rounds = b.newBlock("rounds");
    auto *inv2 = b.newBlock("inv2");
    auto *inv1_init = b.newBlock("inv1_init");
    auto *inv1 = b.newBlock("inv1");
    auto *round_next = b.newBlock("round_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto r = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(fill);

    b.setInsertPoint(fill);
    const auto s0 = b.mul(B::reg(i), B::imm(41));
    const auto s1 = b.band(B::reg(s0), B::imm(127));
    const auto s2 = b.sub(B::reg(s1), B::imm(64));
    b.store(AddrExpr::makeObject(level2, B::reg(i)), B::reg(s2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(fc), fill, rounds);

    b.setInsertPoint(rounds);
    b.movTo(i, B::imm(0));
    b.jmp(inv2);

    // Level 2 -> level 1 coarse half: a = avg + diff/2, c = avg - diff/2.
    b.setInsertPoint(inv2);
    const auto avg = b.load(AddrExpr::makeObject(level2, B::reg(i)));
    const auto didx = b.add(B::reg(i), B::imm(16));
    const auto diff = b.load(AddrExpr::makeObject(level2, B::reg(didx)));
    const auto halfd = b.div(B::reg(diff), B::imm(2));
    const auto a = b.add(B::reg(avg), B::reg(halfd));
    const auto c = b.sub(B::reg(avg), B::reg(halfd));
    const auto two_i = b.shl(B::reg(i), B::imm(1));
    const auto two_i1 = b.add(B::reg(two_i), B::imm(1));
    b.store(AddrExpr::makeObject(level1, B::reg(two_i)), B::reg(a));
    b.store(AddrExpr::makeObject(level1, B::reg(two_i1)), B::reg(c));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto i2c = b.cmpLt(B::reg(i), B::imm(16));
    b.br(B::reg(i2c), inv2, inv1_init);

    b.setInsertPoint(inv1_init);
    b.movTo(i, B::imm(0));
    b.jmp(inv1);

    // Level 1 -> image (with a dynamically-dead corruption guard).
    b.setInsertPoint(inv1);
    auto *coef_err = b.newBlock("coef_err");
    auto *inv1_body = b.newBlock("inv1_body");
    const auto probe = b.load(AddrExpr::makeObject(level1, B::reg(i)));
    const auto corrupt = b.cmpGt(B::reg(probe), B::imm(1000000));
    b.br(B::reg(corrupt), coef_err, inv1_body);

    b.setInsertPoint(coef_err);
    const auto u_ec = b.load(AddrExpr::makeObject(errlog));
    const auto u_ec2 = b.add(B::reg(u_ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(u_ec2));
    b.jmp(inv1_body);

    b.setInsertPoint(inv1_body);
    const auto avg1 = b.load(AddrExpr::makeObject(level1, B::reg(i)));
    const auto d1idx = b.add(B::reg(i), B::imm(32));
    const auto diff1 = b.load(AddrExpr::makeObject(level1, B::reg(d1idx)));
    const auto halfd1 = b.div(B::reg(diff1), B::imm(2));
    const auto a1 = b.add(B::reg(avg1), B::reg(halfd1));
    const auto c1 = b.sub(B::reg(avg1), B::reg(halfd1));
    const auto o0 = b.shl(B::reg(i), B::imm(1));
    const auto o1 = b.add(B::reg(o0), B::imm(1));
    b.store(AddrExpr::makeObject(image, B::reg(o0)), B::reg(a1));
    b.store(AddrExpr::makeObject(image, B::reg(o1)), B::reg(c1));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto i1c = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(i1c), inv1, round_next);

    b.setInsertPoint(round_next);
    b.addTo(r, B::reg(r), B::imm(1));
    const auto total = b.shr(B::reg(n), B::imm(3));
    const auto more = b.cmpLt(B::reg(r), B::reg(total));
    b.br(B::reg(more), rounds, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto iv = b.load(AddrExpr::makeObject(image, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(iv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(64));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
