/**
 * @file
 * 197.parser — dictionary/link-grammar-style parser (SPEC2K-INT
 * stand-in).
 *
 * Mixes a recursive descent routine (recursion defeats the call
 * summaries, so its callers' regions are Unknown), an explicit parse
 * stack kept in memory (push/pop WARs on the stack pointer word), and
 * read-only dictionary probing.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildParser()
{
    auto module = std::make_unique<ir::Module>("197.parser");
    B b(module.get());

    const auto dict = b.global("dict", 128);
    const auto stack = b.global("stack", 64);
    const auto sp = b.global("sp", 1);
    const auto counts = b.global("counts", 16);
    const auto result = b.global("result", 1);

    // --- init_dict() -----------------------------------------------------------
    {
        b.beginFunction("init_dict", 0);
        auto *loop = b.newBlock("loop");
        auto *done = b.newBlock("done");
        const auto k = b.mov(B::imm(0));
        b.jmp(loop);
        b.setInsertPoint(loop);
        const auto h = b.mul(B::reg(k), B::imm(2654435761LL));
        const auto v = b.shr(B::reg(h), B::imm(24));
        const auto w = b.band(B::reg(v), B::imm(255));
        b.store(AddrExpr::makeObject(dict, B::reg(k)), B::reg(w));
        b.addTo(k, B::reg(k), B::imm(1));
        const auto kc = b.cmpLt(B::reg(k), B::imm(128));
        b.br(B::reg(kc), loop, done);
        b.setInsertPoint(done);
        b.ret(B::imm(0));
        b.endFunction();
    }

    // --- descend(depth): recursive structure matcher ------------------------
    // Recursive: the mod/ref summary machinery flags it, so regions
    // containing this call become Unknown — the paper's unanalyzable
    // slice for control-heavy INT codes.
    {
        b.beginFunction("descend", 1);
        auto *base = b.newBlock("base");
        auto *rec = b.newBlock("rec");
        const auto stop = b.cmpLe(B::reg(0), B::imm(0));
        b.br(B::reg(stop), base, rec);

        b.setInsertPoint(base);
        b.ret(B::imm(1));

        b.setInsertPoint(rec);
        const auto slot = b.band(B::reg(0), B::imm(15));
        const auto c = b.load(AddrExpr::makeObject(counts, B::reg(slot)));
        const auto c2 = b.add(B::reg(c), B::imm(1));
        b.store(AddrExpr::makeObject(counts, B::reg(slot)), B::reg(c2));
        const auto d2 = b.sub(B::reg(0), B::imm(1));
        const auto sub = b.call("descend", {B::reg(d2)});
        const auto total = b.add(B::reg(sub), B::imm(1));
        b.ret(B::reg(total));
        b.endFunction();
    }

    // --- probe(word): read-only dictionary lookup -----------------------------
    {
        b.beginFunction("probe", 1);
        auto *scan = b.newBlock("scan");
        auto *hit = b.newBlock("hit");
        auto *miss = b.newBlock("miss");
        auto *out = b.newBlock("out");
        const auto h = b.mul(B::reg(0), B::imm(31));
        const auto idx = b.band(B::reg(h), B::imm(127));
        const auto tries = b.mov(B::imm(0));
        const auto pos = b.mov(B::reg(idx));
        b.jmp(scan);

        b.setInsertPoint(scan);
        const auto entry = b.load(AddrExpr::makeObject(dict, B::reg(pos)));
        const auto match = b.cmpEq(B::reg(entry), B::reg(0));
        b.br(B::reg(match), hit, miss);

        b.setInsertPoint(miss);
        const auto p2 = b.add(B::reg(pos), B::imm(1));
        const auto pw = b.band(B::reg(p2), B::imm(127));
        b.movTo(pos, B::reg(pw));
        b.addTo(tries, B::reg(tries), B::imm(1));
        const auto give_up = b.cmpGe(B::reg(tries), B::imm(8));
        b.br(B::reg(give_up), out, scan);

        b.setInsertPoint(hit);
        b.ret(B::reg(tries));

        b.setInsertPoint(out);
        b.ret(B::imm(255));
        b.endFunction();
    }

    // --- main(n) ------------------------------------------------------------------
    b.beginFunction("main", 1);
    auto *sentence = b.newBlock("sentence");
    auto *push = b.newBlock("push");
    auto *pop = b.newBlock("pop");
    auto *next = b.newBlock("next");
    auto *deep = b.newBlock("deep");
    auto *after_deep = b.newBlock("after_deep");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    b.callVoid("init_dict", {});
    const auto i = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(sentence);

    b.setInsertPoint(sentence);
    const auto word = b.mul(B::reg(i), B::imm(97));
    const auto wlow = b.band(B::reg(word), B::imm(255));
    const auto score = b.call("probe", {B::reg(wlow)});
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(score));
    const auto parity = b.band(B::reg(i), B::imm(1));
    b.br(B::reg(parity), push, pop);

    // push: stack[sp] = word; sp++ — WAR on the stack pointer word.
    b.setInsertPoint(push);
    const auto spv = b.load(AddrExpr::makeObject(sp));
    const auto sp_mask = b.band(B::reg(spv), B::imm(63));
    b.store(AddrExpr::makeObject(stack, B::reg(sp_mask)), B::reg(wlow));
    const auto spv2 = b.add(B::reg(spv), B::imm(1));
    b.store(AddrExpr::makeObject(sp), B::reg(spv2));
    b.jmp(next);

    // pop: sp--; read back — WAR again.
    b.setInsertPoint(pop);
    const auto spv3 = b.load(AddrExpr::makeObject(sp));
    const auto nonzero = b.cmpGt(B::reg(spv3), B::imm(0));
    const auto dec = b.sub(B::reg(spv3), B::reg(nonzero));
    b.store(AddrExpr::makeObject(sp), B::reg(dec));
    const auto dmask = b.band(B::reg(dec), B::imm(63));
    const auto top = b.load(AddrExpr::makeObject(stack, B::reg(dmask)));
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(top));
    b.jmp(next);

    // Every 32 words, run the recursive matcher.
    b.setInsertPoint(next);
    const auto low = b.band(B::reg(i), B::imm(31));
    const auto is_deep = b.cmpEq(B::reg(low), B::imm(0));
    b.br(B::reg(is_deep), deep, after_deep);

    b.setInsertPoint(deep);
    const auto depth = b.band(B::reg(i), B::imm(7));
    const auto matched = b.call("descend", {B::reg(depth)});
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(matched));
    b.jmp(after_deep);

    b.setInsertPoint(after_deep);
    b.addTo(i, B::reg(i), B::imm(1));
    const auto more = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(more), sentence, done);

    b.setInsertPoint(done);
    const auto c3 = b.load(AddrExpr::makeObject(counts, B::imm(3)));
    const auto out = b.bxor(B::reg(acc), B::reg(c3));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
