/**
 * @file
 * djpeg — JPEG decompression kernel (Mediabench stand-in).
 *
 * Dequantization and the inverse transform stream coefficients into a
 * separate raster with a final clamp — almost entirely idempotent,
 * like the decoder half of most media pipelines in Figure 6.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildDjpeg()
{
    auto module = std::make_unique<ir::Module>("djpeg");
    B b(module.get());

    const auto coef = b.global("coef", 256);
    const auto quant = b.global("quant", 8);
    const auto raster = b.global("raster", 256);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *qinit = b.newBlock("qinit");
    auto *fill = b.newBlock("fill");
    auto *idct = b.newBlock("idct");
    auto *clamp_low = b.newBlock("clamp_low");
    auto *clamp_done = b.newBlock("clamp_done");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    // Decoder pointers: coefficient source and raster sink arrive as
    // indistinguishable pointers (alias-analysis pressure).
    const auto pcoef = b.lea(AddrExpr::makeObject(coef));
    const auto praster = b.lea(AddrExpr::makeObject(raster));
    const auto one = b.mov(B::imm(1));
    const auto src = b.select(B::reg(one), B::reg(pcoef), B::reg(praster));
    const auto dst = b.select(B::reg(one), B::reg(praster), B::reg(pcoef));
    b.jmp(qinit);

    b.setInsertPoint(qinit);
    const auto q = b.add(B::reg(i), B::imm(2));
    b.store(AddrExpr::makeObject(quant, B::reg(i)), B::reg(q));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto qc = b.cmpLt(B::reg(i), B::imm(8));
    b.br(B::reg(qc), qinit, fill);

    b.setInsertPoint(fill);
    b.movTo(i, B::imm(0));
    auto *fill_loop = b.newBlock("fill_loop");
    b.jmp(fill_loop);

    b.setInsertPoint(fill_loop);
    const auto c0 = b.mul(B::reg(i), B::imm(37));
    const auto c1 = b.band(B::reg(c0), B::imm(127));
    const auto c2 = b.sub(B::reg(c1), B::imm(64));
    b.store(AddrExpr::makeObject(coef, B::reg(i)), B::reg(c2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill_loop, idct);

    // idct: raster[i] = clamp(coef[i] * quant[lane] + neighbor smear).
    b.setInsertPoint(idct);
    b.movTo(i, B::imm(0));
    auto *idct_loop = b.newBlock("idct_loop");
    b.jmp(idct_loop);

    b.setInsertPoint(idct_loop);
    const auto cv = b.load(AddrExpr::makeReg(src, B::reg(i)));
    const auto lane = b.band(B::reg(i), B::imm(7));
    const auto qv = b.load(AddrExpr::makeObject(quant, B::reg(lane)));
    const auto deq = b.mul(B::reg(cv), B::reg(qv));
    const auto nb_idx0 = b.add(B::reg(i), B::imm(1));
    const auto nb_idx = b.band(B::reg(nb_idx0), B::imm(255));
    const auto nb = b.load(AddrExpr::makeReg(src, B::reg(nb_idx)));
    const auto smear = b.add(B::reg(deq), B::reg(nb));
    const auto biased = b.add(B::reg(smear), B::imm(128));
    const auto too_low = b.cmpLt(B::reg(biased), B::imm(0));
    b.br(B::reg(too_low), clamp_low, clamp_done);

    auto *idct_next = b.newBlock("idct_next");
    b.setInsertPoint(clamp_low);
    b.store(AddrExpr::makeReg(dst, B::reg(i)), B::imm(0));
    b.jmp(idct_next);

    b.setInsertPoint(clamp_done);
    const auto capped = b.band(B::reg(biased), B::imm(255));
    b.store(AddrExpr::makeReg(dst, B::reg(i)), B::reg(capped));
    b.jmp(idct_next);

    b.setInsertPoint(idct_next);
    b.addTo(i, B::reg(i), B::imm(1));
    const auto inext = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(inext), idct_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto rv = b.load(AddrExpr::makeObject(raster, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(rv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(256));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
