/**
 * @file
 * 183.equake — sparse matrix-vector product with explicit time
 * integration (SPEC2K-FP stand-in).
 *
 * The dominant sparse matvec reads the matrix and the displacement
 * vector and writes a separate result vector (idempotent). The short
 * time-integration epilogue rotates the displacement history in place
 * (WARs on both history arrays); its undo log grows with the vector
 * length, so whether it is protected depends on the storage budget —
 * a small recoverability gap, as equake shows in Figure 6.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildEquake()
{
    auto module = std::make_unique<ir::Module>("183.equake");
    B b(module.get());

    const auto acol = b.global("acol", 128);
    const auto aval = b.global("aval", 128);
    const auto disp = b.global("disp", 32);
    const auto disp_old = b.global("disp_old", 32);
    const auto force = b.global("force", 32);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *init = b.newBlock("init");
    auto *disp_init = b.newBlock("disp_init");
    auto *steps = b.newBlock("steps");
    auto *matvec = b.newBlock("matvec");
    auto *integrate_init = b.newBlock("integrate_init");
    auto *integrate = b.newBlock("integrate");
    auto *step_next = b.newBlock("step_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto s = b.mov(B::imm(0));
    const auto sum = b.mov(B::fpImm(0.0));
    b.jmp(init);

    // Sparse matrix: 4 entries per row over 32 rows.
    b.setInsertPoint(init);
    const auto col0 = b.mul(B::reg(i), B::imm(13));
    const auto col = b.band(B::reg(col0), B::imm(31));
    b.store(AddrExpr::makeObject(acol, B::reg(i)), B::reg(col));
    const auto fi = b.i2f(B::reg(i));
    const auto v = b.fmul(B::reg(fi), B::fpImm(0.0078125));
    b.store(AddrExpr::makeObject(aval, B::reg(i)), B::reg(v));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto ic = b.cmpLt(B::reg(i), B::imm(128));
    b.br(B::reg(ic), init, disp_init);

    b.setInsertPoint(disp_init);
    b.movTo(i, B::imm(0));
    auto *disp_loop = b.newBlock("disp_loop");
    b.jmp(disp_loop);

    b.setInsertPoint(disp_loop);
    const auto fj = b.i2f(B::reg(i));
    const auto d0 = b.fmul(B::reg(fj), B::fpImm(0.03125));
    b.store(AddrExpr::makeObject(disp, B::reg(i)), B::reg(d0));
    b.store(AddrExpr::makeObject(disp_old, B::reg(i)), B::reg(d0));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto dc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(dc), disp_loop, steps);

    // Time steps: n/8 iterations of matvec + integration.
    b.setInsertPoint(steps);
    b.movTo(i, B::imm(0));
    b.jmp(matvec);

    // matvec: force[r] = sum of 4 entries * disp[col] (idempotent,
    // apart from a dynamically-dead column-index guard).
    b.setInsertPoint(matvec);
    auto *col_err = b.newBlock("col_err");
    auto *matvec_body = b.newBlock("matvec_body");
    const auto probe = b.load(AddrExpr::makeObject(acol, B::reg(i)));
    const auto bad_col = b.cmpGt(B::reg(probe), B::imm(1000));
    b.br(B::reg(bad_col), col_err, matvec_body);

    b.setInsertPoint(col_err);
    const auto ec = b.load(AddrExpr::makeObject(errlog));
    const auto ec2 = b.add(B::reg(ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(ec2));
    b.jmp(matvec_body);

    b.setInsertPoint(matvec_body);
    const auto row4 = b.shl(B::reg(i), B::imm(2));
    const auto acc0 = b.mov(B::fpImm(0.0));
    const auto k1 = b.add(B::reg(row4), B::imm(1));
    const auto k2 = b.add(B::reg(row4), B::imm(2));
    const auto k3 = b.add(B::reg(row4), B::imm(3));
    const auto c0 = b.load(AddrExpr::makeObject(acol, B::reg(row4)));
    const auto v0 = b.load(AddrExpr::makeObject(aval, B::reg(row4)));
    const auto x0 = b.load(AddrExpr::makeObject(disp, B::reg(c0)));
    const auto p0 = b.fmul(B::reg(v0), B::reg(x0));
    b.emitTo(acc0, Opcode::FAdd, B::reg(acc0), B::reg(p0));
    const auto c1 = b.load(AddrExpr::makeObject(acol, B::reg(k1)));
    const auto v1 = b.load(AddrExpr::makeObject(aval, B::reg(k1)));
    const auto x1 = b.load(AddrExpr::makeObject(disp, B::reg(c1)));
    const auto p1 = b.fmul(B::reg(v1), B::reg(x1));
    b.emitTo(acc0, Opcode::FAdd, B::reg(acc0), B::reg(p1));
    const auto c2 = b.load(AddrExpr::makeObject(acol, B::reg(k2)));
    const auto v2 = b.load(AddrExpr::makeObject(aval, B::reg(k2)));
    const auto x2 = b.load(AddrExpr::makeObject(disp, B::reg(c2)));
    const auto p2 = b.fmul(B::reg(v2), B::reg(x2));
    b.emitTo(acc0, Opcode::FAdd, B::reg(acc0), B::reg(p2));
    const auto c3 = b.load(AddrExpr::makeObject(acol, B::reg(k3)));
    const auto v3 = b.load(AddrExpr::makeObject(aval, B::reg(k3)));
    const auto x3 = b.load(AddrExpr::makeObject(disp, B::reg(c3)));
    const auto p3 = b.fmul(B::reg(v3), B::reg(x3));
    b.emitTo(acc0, Opcode::FAdd, B::reg(acc0), B::reg(p3));
    b.store(AddrExpr::makeObject(force, B::reg(i)), B::reg(acc0));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto mc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(mc), matvec, integrate_init);

    // integrate: rotate the displacement history in place.
    b.setInsertPoint(integrate_init);
    b.movTo(i, B::imm(0));
    b.jmp(integrate);

    b.setInsertPoint(integrate);
    const auto dv = b.load(AddrExpr::makeObject(disp, B::reg(i)));
    const auto ov = b.load(AddrExpr::makeObject(disp_old, B::reg(i)));
    const auto fv = b.load(AddrExpr::makeObject(force, B::reg(i)));
    const auto twice = b.fadd(B::reg(dv), B::reg(dv));
    const auto hist = b.fsub(B::reg(twice), B::reg(ov));
    const auto kick = b.fmul(B::reg(fv), B::fpImm(0.001));
    const auto newv = b.fadd(B::reg(hist), B::reg(kick));
    b.store(AddrExpr::makeObject(disp_old, B::reg(i)), B::reg(dv));
    b.store(AddrExpr::makeObject(disp, B::reg(i)), B::reg(newv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto gc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(gc), integrate, step_next);

    b.setInsertPoint(step_next);
    b.addTo(s, B::reg(s), B::imm(1));
    const auto rounds = b.shr(B::reg(n), B::imm(3));
    const auto sc = b.cmpLt(B::reg(s), B::reg(rounds));
    b.br(B::reg(sc), steps, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto rdv = b.load(AddrExpr::makeObject(disp, B::reg(i)));
    b.emitTo(sum, Opcode::FAdd, B::reg(sum), B::reg(rdv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    const auto clamped = b.fmul(B::reg(sum), B::fpImm(16.0));
    const auto out = b.f2i(B::reg(clamped));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
