/**
 * @file
 * The synthetic workload suite.
 *
 * The paper evaluates on SPEC2000 INT/FP and Mediabench binaries, which
 * are not available offline; each benchmark here is a from-scratch IR
 * program named after its paper counterpart and built to exhibit the
 * same *idempotence-relevant* character:
 *
 *  - SPEC2K-INT: control-heavy code with in-place data structure
 *    updates (hash chains, histograms, stacks, pointer chasing) —
 *    frequent WAR hazards, some opaque "library" calls.
 *  - SPEC2K-FP: regular array/stencil kernels that read one buffer and
 *    write another — naturally idempotent hot loops.
 *  - MEDIABENCH: streaming codec kernels — largely idempotent with
 *    small, cheap-to-checkpoint predictor/state updates.
 *
 * Every workload is deterministic, returns a checksum, and leaves its
 * results in global objects so fault-injection outcomes can be judged
 * by exact output comparison.
 */
#ifndef ENCORE_WORKLOADS_WORKLOAD_H
#define ENCORE_WORKLOADS_WORKLOAD_H

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/module.h"

namespace encore::workloads {

struct Workload
{
    std::string name;  ///< Paper benchmark name, e.g. "175.vpr".
    std::string suite; ///< "SPEC2K-INT", "SPEC2K-FP", or "MEDIABENCH".
    /// Builds a fresh, uninstrumented module.
    std::function<std::unique_ptr<ir::Module>()> build;
    std::string entry = "main";
    /// Arguments for the profiling (train) run.
    std::vector<std::uint64_t> train_args;
    /// Arguments for the evaluation (ref) run.
    std::vector<std::uint64_t> ref_args;
    /// Functions to treat as opaque library calls.
    std::set<std::string> opaque;
};

/// All 23 workloads in suite order (INT, FP, MEDIA).
const std::vector<Workload> &allWorkloads();

/// Lookup by paper name; nullptr if absent.
const Workload *findWorkload(const std::string &name);

/// Workloads of one suite.
std::vector<const Workload *> workloadsInSuite(const std::string &suite);

/// The three suite names in presentation order.
const std::vector<std::string> &suiteNames();

} // namespace encore::workloads

#endif // ENCORE_WORKLOADS_WORKLOAD_H
