/**
 * @file
 * 172.mgrid — multigrid smoother (SPEC2K-FP stand-in).
 *
 * Alternating three-point stencil passes between two distinct grids:
 * every hot loop reads one array and writes the other, so the whole
 * kernel is naturally idempotent — mgrid is one of the paper's
 * "instrumented everything without spending the budget" benchmarks.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildMgrid()
{
    auto module = std::make_unique<ir::Module>("172.mgrid");
    B b(module.get());

    const auto va = b.global("va", 66);
    const auto vb = b.global("vb", 66);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *init = b.newBlock("init");
    auto *passes = b.newBlock("passes");
    auto *smooth_ab = b.newBlock("smooth_ab");
    auto *smooth_ba_init = b.newBlock("smooth_ba_init");
    auto *smooth_ba = b.newBlock("smooth_ba");
    auto *pass_next = b.newBlock("pass_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto p = b.mov(B::imm(0));
    const auto quarter = b.mov(B::fpImm(0.25));
    const auto half = b.mov(B::fpImm(0.5));
    const auto sum = b.mov(B::fpImm(0.0));
    // Grid pointers: like real multigrid code, the smoother receives
    // src/dst pointers it cannot statically tell apart — the paper's
    // alias-analysis checkpointing pressure (Figure 7a).
    const auto pva = b.lea(AddrExpr::makeObject(va));
    const auto pvb = b.lea(AddrExpr::makeObject(vb));
    const auto one = b.mov(B::imm(1));
    const auto src_ab = b.select(B::reg(one), B::reg(pva), B::reg(pvb));
    const auto dst_ab = b.select(B::reg(one), B::reg(pvb), B::reg(pva));
    const auto src_ba = b.select(B::reg(one), B::reg(pvb), B::reg(pva));
    const auto dst_ba = b.select(B::reg(one), B::reg(pva), B::reg(pvb));
    b.jmp(init);

    // init: va[i] = i / 66.0-ish seed values.
    b.setInsertPoint(init);
    const auto fi = b.i2f(B::reg(i));
    const auto scaled = b.fmul(B::reg(fi), B::reg(quarter));
    b.store(AddrExpr::makeObject(va, B::reg(i)), B::reg(scaled));
    b.store(AddrExpr::makeObject(vb, B::reg(i)), B::imm(0));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto ic = b.cmpLt(B::reg(i), B::imm(66));
    b.br(B::reg(ic), init, passes);

    // passes: n/16 smoothing rounds.
    b.setInsertPoint(passes);
    b.movTo(i, B::imm(1));
    b.jmp(smooth_ab);

    // vb[i] = 0.25*(va[i-1] + 2*va[i] + va[i+1])
    b.setInsertPoint(smooth_ab);
    const auto im1 = b.sub(B::reg(i), B::imm(1));
    const auto ip1 = b.add(B::reg(i), B::imm(1));
    const auto a0 = b.load(AddrExpr::makeReg(src_ab, B::reg(im1)));
    const auto a1 = b.load(AddrExpr::makeReg(src_ab, B::reg(i)));
    const auto a2 = b.load(AddrExpr::makeReg(src_ab, B::reg(ip1)));
    const auto twice = b.fmul(B::reg(a1), B::reg(half));
    const auto e0 = b.fadd(B::reg(a0), B::reg(twice));
    const auto e1 = b.fadd(B::reg(e0), B::reg(a2));
    const auto e2 = b.fmul(B::reg(e1), B::reg(quarter));
    b.store(AddrExpr::makeReg(dst_ab, B::reg(i)), B::reg(e2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto sc = b.cmpLt(B::reg(i), B::imm(65));
    b.br(B::reg(sc), smooth_ab, smooth_ba_init);

    b.setInsertPoint(smooth_ba_init);
    b.movTo(i, B::imm(1));
    b.jmp(smooth_ba);

    // va[i] = 0.25*(vb[i-1] + 2*vb[i] + vb[i+1])
    b.setInsertPoint(smooth_ba);
    const auto jm1 = b.sub(B::reg(i), B::imm(1));
    const auto jp1 = b.add(B::reg(i), B::imm(1));
    const auto b0 = b.load(AddrExpr::makeReg(src_ba, B::reg(jm1)));
    const auto b1 = b.load(AddrExpr::makeReg(src_ba, B::reg(i)));
    const auto b2 = b.load(AddrExpr::makeReg(src_ba, B::reg(jp1)));
    const auto twiceb = b.fmul(B::reg(b1), B::reg(half));
    const auto f0 = b.fadd(B::reg(b0), B::reg(twiceb));
    const auto f1 = b.fadd(B::reg(f0), B::reg(b2));
    const auto f2 = b.fmul(B::reg(f1), B::reg(quarter));
    b.store(AddrExpr::makeReg(dst_ba, B::reg(i)), B::reg(f2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto bc = b.cmpLt(B::reg(i), B::imm(65));
    b.br(B::reg(bc), smooth_ba, pass_next);

    b.setInsertPoint(pass_next);
    b.addTo(p, B::reg(p), B::imm(1));
    const auto rounds = b.shr(B::reg(n), B::imm(4));
    const auto pc = b.cmpLt(B::reg(p), B::reg(rounds));
    b.br(B::reg(pc), passes, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto v = b.load(AddrExpr::makeObject(va, B::reg(i)));
    b.emitTo(sum, Opcode::FAdd, B::reg(sum), B::reg(v));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(66));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    const auto scaled_sum = b.fmul(B::reg(sum), B::fpImm(1024.0));
    const auto out = b.f2i(B::reg(scaled_sum));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
