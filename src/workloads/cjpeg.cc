/**
 * @file
 * cjpeg — JPEG compression kernel (Mediabench stand-in).
 *
 * Block transform and quantization read the raster and write separate
 * coefficient arrays (idempotent); the entropy-coding stage keeps its
 * output cursor in memory, giving one small WAR per emitted symbol —
 * the cheap-to-checkpoint pattern that puts media codes in the
 * "Recoverable w/ Encore Checkpointing" slice of Figure 6.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildCjpeg()
{
    auto module = std::make_unique<ir::Module>("cjpeg");
    B b(module.get());

    const auto raster = b.global("raster", 256);
    const auto coef = b.global("coef", 256);
    const auto quant = b.global("quant", 8);
    const auto bits = b.global("bits", 256);
    const auto outpos = b.global("outpos", 1);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *qinit = b.newBlock("qinit");
    auto *fill = b.newBlock("fill");
    auto *dct = b.newBlock("dct");
    auto *emit = b.newBlock("emit");
    auto *skip_emit = b.newBlock("skip_emit");
    auto *next = b.newBlock("next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(qinit);

    b.setInsertPoint(qinit);
    const auto q = b.add(B::reg(i), B::imm(1));
    b.store(AddrExpr::makeObject(quant, B::reg(i)), B::reg(q));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto qc = b.cmpLt(B::reg(i), B::imm(8));
    b.br(B::reg(qc), qinit, fill);

    b.setInsertPoint(fill);
    b.movTo(i, B::imm(0));
    auto *fill_loop = b.newBlock("fill_loop");
    b.jmp(fill_loop);

    b.setInsertPoint(fill_loop);
    const auto px0 = b.mul(B::reg(i), B::imm(73));
    const auto px = b.band(B::reg(px0), B::imm(255));
    b.store(AddrExpr::makeObject(raster, B::reg(i)), B::reg(px));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(fc), fill_loop, dct);

    // dct+quantize: pure transform into the coefficient array.
    b.setInsertPoint(dct);
    b.movTo(i, B::imm(0));
    auto *dct_loop = b.newBlock("dct_loop");
    b.jmp(dct_loop);

    b.setInsertPoint(dct_loop);
    // Pixel-range guard: raster values are 8-bit by construction, so
    // this error path is dynamically dead.
    auto *px_err = b.newBlock("px_err");
    auto *dct_body = b.newBlock("dct_body");
    const auto probe = b.load(AddrExpr::makeObject(raster, B::reg(i)));
    const auto out_of_range = b.cmpGt(B::reg(probe), B::imm(100000));
    b.br(B::reg(out_of_range), px_err, dct_body);

    b.setInsertPoint(px_err);
    const auto j_ec = b.load(AddrExpr::makeObject(errlog));
    const auto j_ec2 = b.add(B::reg(j_ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(j_ec2));
    b.jmp(dct_body);

    b.setInsertPoint(dct_body);
    const auto p0 = b.load(AddrExpr::makeObject(raster, B::reg(i)));
    const auto prev_idx0 = b.add(B::reg(i), B::imm(255));
    const auto prev_idx = b.band(B::reg(prev_idx0), B::imm(255));
    const auto p1 = b.load(AddrExpr::makeObject(raster, B::reg(prev_idx)));
    const auto diff = b.sub(B::reg(p0), B::reg(p1));
    const auto lane = b.band(B::reg(i), B::imm(7));
    const auto qv = b.load(AddrExpr::makeObject(quant, B::reg(lane)));
    const auto scaled = b.div(B::reg(diff), B::reg(qv));
    b.store(AddrExpr::makeObject(coef, B::reg(i)), B::reg(scaled));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto dcnd = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(dcnd), dct_loop, emit);

    // entropy coding: nonzero coefficients append to bits[] through an
    // in-memory cursor (WAR on outpos).
    b.setInsertPoint(emit);
    b.movTo(i, B::imm(0));
    auto *emit_loop = b.newBlock("emit_loop");
    b.jmp(emit_loop);

    b.setInsertPoint(emit_loop);
    const auto cv = b.load(AddrExpr::makeObject(coef, B::reg(i)));
    const auto zero = b.cmpEq(B::reg(cv), B::imm(0));
    b.br(B::reg(zero), skip_emit, next);

    b.setInsertPoint(next);
    const auto pos = b.load(AddrExpr::makeObject(outpos));
    const auto pmask = b.band(B::reg(pos), B::imm(255));
    const auto mag0 = b.mul(B::reg(cv), B::reg(cv));
    const auto mag = b.band(B::reg(mag0), B::imm(1023));
    b.store(AddrExpr::makeObject(bits, B::reg(pmask)), B::reg(mag));
    const auto pos2 = b.add(B::reg(pos), B::imm(1));
    b.store(AddrExpr::makeObject(outpos), B::reg(pos2));
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(mag));
    b.jmp(skip_emit);

    b.setInsertPoint(skip_emit);
    b.addTo(i, B::reg(i), B::imm(1));
    const auto ec = b.cmpLt(B::reg(i), B::reg(n));
    b.br(B::reg(ec), emit_loop, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto bv = b.load(AddrExpr::makeObject(bits, B::reg(i)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(bv));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(256));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
