/**
 * @file
 * 175.vpr — simulated-annealing placement kernel (SPEC2K-INT stand-in).
 *
 * Reproduces the paper's Figure 2c observation about `try_swap`, vpr's
 * hottest function: a first-invocation initialization path allocates
 * and fills tables (stores that break idempotence), but it executes
 * exactly once, so with Pmin pruning at 0.1 the region's hot path is
 * statistically idempotent apart from the accepted-swap updates. The
 * accepted-swap path itself performs classic read-modify-write WARs on
 * the placement and the running cost.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildVpr()
{
    auto module = std::make_unique<ir::Module>("175.vpr");
    B b(module.get());

    const auto init_done = b.global("init_done", 1);
    const auto cost_table = b.global("cost_table", 64);
    const auto placement = b.global("placement", 64);
    const auto total_cost = b.global("total_cost", 1);
    const auto result = b.global("result", 1);

    // --- try_swap(p1, p2, rnd) ---------------------------------------------
    {
        b.beginFunction("try_swap", 3);
        auto *cold_init = b.newBlock("cold_init");
        auto *cold_loop = b.newBlock("cold_loop");
        auto *hot = b.newBlock("hot");
        auto *eval = b.newBlock("eval");
        auto *do_swap = b.newBlock("do_swap");
        auto *reject = b.newBlock("reject");

        const ir::RegId p1 = 0, p2 = 1, rnd = 2;
        const auto flag = b.load(AddrExpr::makeObject(init_done));
        b.br(B::reg(flag), hot, cold_init);

        // First call only: build the cost model tables (Figure 2c's
        // shaded allocation blocks).
        b.setInsertPoint(cold_init);
        b.store(AddrExpr::makeObject(init_done), B::imm(1));
        const auto k = b.mov(B::imm(0));
        b.jmp(cold_loop);

        b.setInsertPoint(cold_loop);
        const auto k7 = b.mul(B::reg(k), B::imm(7));
        const auto k73 = b.add(B::reg(k7), B::imm(3));
        const auto cost = b.band(B::reg(k73), B::imm(31));
        b.store(AddrExpr::makeObject(cost_table, B::reg(k)), B::reg(cost));
        b.store(AddrExpr::makeObject(placement, B::reg(k)), B::reg(k));
        b.addTo(k, B::reg(k), B::imm(1));
        const auto kc = b.cmpLt(B::reg(k), B::imm(64));
        b.br(B::reg(kc), cold_loop, hot);

        // Hot path: evaluate the swap of cells p1 and p2.
        b.setInsertPoint(hot);
        const auto a = b.load(AddrExpr::makeObject(placement, B::reg(p1)));
        const auto c = b.load(AddrExpr::makeObject(placement, B::reg(p2)));
        const auto ca = b.load(AddrExpr::makeObject(cost_table, B::reg(a)));
        const auto cc = b.load(AddrExpr::makeObject(cost_table, B::reg(c)));
        b.jmp(eval);

        b.setInsertPoint(eval);
        const auto diff = b.sub(B::reg(cc), B::reg(ca));
        const auto noise = b.band(B::reg(rnd), B::imm(7));
        const auto delta = b.add(B::reg(diff), B::reg(noise));
        const auto shifted = b.sub(B::reg(delta), B::imm(4));
        const auto downhill = b.cmpLt(B::reg(shifted), B::imm(0));
        const auto lucky_bits = b.band(B::reg(rnd), B::imm(31));
        const auto lucky = b.cmpEq(B::reg(lucky_bits), B::imm(0));
        const auto accept = b.bor(B::reg(downhill), B::reg(lucky));
        b.br(B::reg(accept), do_swap, reject);

        // Accepted: swap the two cells and update the running cost —
        // the WARs Encore must checkpoint on the hot path.
        b.setInsertPoint(do_swap);
        b.store(AddrExpr::makeObject(placement, B::reg(p1)), B::reg(c));
        b.store(AddrExpr::makeObject(placement, B::reg(p2)), B::reg(a));
        const auto tc = b.load(AddrExpr::makeObject(total_cost));
        const auto tc2 = b.add(B::reg(tc), B::reg(shifted));
        b.store(AddrExpr::makeObject(total_cost), B::reg(tc2));
        b.ret(B::reg(shifted));

        b.setInsertPoint(reject);
        b.ret(B::imm(0));
        b.endFunction();
    }

    // --- main(n): the annealing schedule ---------------------------------------
    {
        b.beginFunction("main", 1);
        auto *anneal = b.newBlock("anneal");
        auto *collect = b.newBlock("collect");
        auto *sum_loop = b.newBlock("sum_loop");
        auto *done = b.newBlock("done");

        const ir::RegId n = 0;
        const auto t = b.mov(B::imm(0));
        const auto seed = b.mov(B::imm(0x2545F4914F6CDD1DLL));
        const auto acc = b.mov(B::imm(0));
        b.jmp(anneal);

        b.setInsertPoint(anneal);
        const auto s1 = b.mul(B::reg(seed), B::imm(6364136223846793005LL));
        b.emitTo(seed, Opcode::Add, B::reg(s1),
                 B::imm(1442695040888963407LL));
        const auto sh1 = b.shr(B::reg(seed), B::imm(8));
        const auto p1 = b.band(B::reg(sh1), B::imm(63));
        const auto sh2 = b.shr(B::reg(seed), B::imm(20));
        const auto p2 = b.band(B::reg(sh2), B::imm(63));
        const auto sh3 = b.shr(B::reg(seed), B::imm(32));
        const auto rnd = b.band(B::reg(sh3), B::imm(255));
        const auto delta =
            b.call("try_swap", {B::reg(p1), B::reg(p2), B::reg(rnd)});
        b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(delta));
        b.addTo(t, B::reg(t), B::imm(1));
        const auto more = b.cmpLt(B::reg(t), B::reg(n));
        b.br(B::reg(more), anneal, collect);

        b.setInsertPoint(collect);
        const auto k = b.mov(B::imm(0));
        b.jmp(sum_loop);

        b.setInsertPoint(sum_loop);
        const auto pv = b.load(AddrExpr::makeObject(placement, B::reg(k)));
        const auto acc3 = b.mul(B::reg(acc), B::imm(3));
        b.emitTo(acc, Opcode::Add, B::reg(acc3), B::reg(pv));
        b.addTo(k, B::reg(k), B::imm(1));
        const auto kc = b.cmpLt(B::reg(k), B::imm(64));
        b.br(B::reg(kc), sum_loop, done);

        b.setInsertPoint(done);
        const auto tcv = b.load(AddrExpr::makeObject(total_cost));
        const auto out = b.bxor(B::reg(acc), B::reg(tcv));
        b.store(AddrExpr::makeObject(result), B::reg(out));
        b.ret(B::reg(out));
        b.endFunction();
    }

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
