/**
 * @file
 * 181.mcf — network-simplex-style pointer chasing (SPEC2K-INT
 * stand-in).
 *
 * The hot loop walks an arc list and updates node potentials in place
 * on every step — a WAR per iteration at a statically unresolvable
 * offset. Instrumenting the loop would accumulate an undo record per
 * iteration, blowing the per-region checkpoint storage budget, so the
 * region stays unprotected: mcf is the paper's poster child for lost
 * recoverability coverage (Figures 6 and 8).
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildMcf()
{
    auto module = std::make_unique<ir::Module>("181.mcf");
    B b(module.get());

    const auto next_arc = b.global("next_arc", 128);
    const auto arc_cost = b.global("arc_cost", 128);
    const auto potential = b.global("potential", 128);
    const auto flow = b.global("flow", 128);
    const auto result = b.global("result", 1);

    // --- build_network(): fixed pseudo-random topology ----------------------
    {
        b.beginFunction("build_network", 0);
        auto *loop = b.newBlock("loop");
        auto *done = b.newBlock("done");
        const auto k = b.mov(B::imm(0));
        b.jmp(loop);

        b.setInsertPoint(loop);
        const auto k61 = b.mul(B::reg(k), B::imm(61));
        const auto succ = b.add(B::reg(k61), B::imm(17));
        const auto wrapped = b.band(B::reg(succ), B::imm(127));
        b.store(AddrExpr::makeObject(next_arc, B::reg(k)),
                B::reg(wrapped));
        const auto k13 = b.mul(B::reg(k), B::imm(13));
        const auto cost = b.band(B::reg(k13), B::imm(63));
        b.store(AddrExpr::makeObject(arc_cost, B::reg(k)), B::reg(cost));
        b.store(AddrExpr::makeObject(potential, B::reg(k)), B::reg(cost));
        b.addTo(k, B::reg(k), B::imm(1));
        const auto kc = b.cmpLt(B::reg(k), B::imm(128));
        b.br(B::reg(kc), loop, done);

        b.setInsertPoint(done);
        b.ret(B::imm(0));
        b.endFunction();
    }

    // --- main(n): price-and-update walk --------------------------------------
    b.beginFunction("main", 1);
    auto *walk = b.newBlock("walk");
    auto *augment = b.newBlock("augment");
    auto *skip = b.newBlock("skip");
    auto *advance = b.newBlock("advance");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    b.callVoid("build_network", {});
    const auto steps = b.mul(B::reg(n), B::imm(4));
    const auto t = b.mov(B::imm(0));
    const auto cur = b.mov(B::imm(1));
    const auto acc = b.mov(B::imm(0));
    b.jmp(walk);

    // walk: follow the arc, reprice the target node in place.
    b.setInsertPoint(walk);
    const auto nxt = b.load(AddrExpr::makeObject(next_arc, B::reg(cur)));
    const auto cost = b.load(AddrExpr::makeObject(arc_cost, B::reg(nxt)));
    const auto pot = b.load(AddrExpr::makeObject(potential, B::reg(nxt)));
    const auto damp = b.shr(B::reg(pot), B::imm(2));
    const auto raise = b.add(B::reg(pot), B::reg(cost));
    const auto newpot = b.sub(B::reg(raise), B::reg(damp));
    // WAR: read potential[nxt], then overwrite it, every iteration.
    b.store(AddrExpr::makeObject(potential, B::reg(nxt)), B::reg(newpot));
    const auto negative = b.cmpLt(B::reg(newpot), B::imm(32));
    b.br(B::reg(negative), augment, skip);

    // augment: push flow along the arc (second in-place update).
    b.setInsertPoint(augment);
    const auto f = b.load(AddrExpr::makeObject(flow, B::reg(nxt)));
    const auto f2 = b.add(B::reg(f), B::imm(1));
    b.store(AddrExpr::makeObject(flow, B::reg(nxt)), B::reg(f2));
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::reg(cost));
    b.jmp(advance);

    b.setInsertPoint(skip);
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::imm(1));
    b.jmp(advance);

    b.setInsertPoint(advance);
    const auto mix = b.band(B::reg(pot), B::imm(3));
    const auto hop = b.add(B::reg(nxt), B::reg(mix));
    const auto wrapped = b.band(B::reg(hop), B::imm(127));
    b.movTo(cur, B::reg(wrapped));
    b.addTo(t, B::reg(t), B::imm(1));
    const auto more = b.cmpLt(B::reg(t), B::reg(steps));
    b.br(B::reg(more), walk, done);

    b.setInsertPoint(done);
    const auto p0 = b.load(AddrExpr::makeObject(potential, B::imm(7)));
    const auto out = b.bxor(B::reg(acc), B::reg(p0));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
