/**
 * @file
 * Workload registry: metadata (suite, train/ref inputs, opaque library
 * functions) for all 23 synthetic benchmarks.
 */
#include "workloads/workload.h"

#include "support/diagnostics.h"
#include "workloads/builders.h"

namespace encore::workloads {

namespace {

std::vector<Workload>
makeWorkloads()
{
    std::vector<Workload> list;

    auto add = [&](const std::string &name, const std::string &suite,
                   std::function<std::unique_ptr<ir::Module>()> build,
                   std::uint64_t train, std::uint64_t ref,
                   std::set<std::string> opaque = {}) {
        Workload w;
        w.name = name;
        w.suite = suite;
        w.build = std::move(build);
        w.train_args = {train};
        w.ref_args = {ref};
        w.opaque = std::move(opaque);
        list.push_back(std::move(w));
    };

    // SPEC2K-INT
    add("164.gzip", "SPEC2K-INT", buildGzip, 320, 500, {"flush_block"});
    add("175.vpr", "SPEC2K-INT", buildVpr, 600, 1200);
    add("181.mcf", "SPEC2K-INT", buildMcf, 400, 800);
    add("197.parser", "SPEC2K-INT", buildParser, 400, 700);
    add("256.bzip2", "SPEC2K-INT", buildBzip2, 200, 256);
    add("300.twolf", "SPEC2K-INT", buildTwolf, 500, 1000,
        {"trace_move"});

    // SPEC2K-FP
    add("172.mgrid", "SPEC2K-FP", buildMgrid, 320, 640);
    add("173.applu", "SPEC2K-FP", buildApplu, 320, 640);
    add("177.mesa", "SPEC2K-FP", buildMesa, 2000, 4000);
    add("179.art", "SPEC2K-FP", buildArt, 320, 640);
    add("183.equake", "SPEC2K-FP", buildEquake, 320, 640);

    // MEDIABENCH
    add("cjpeg", "MEDIABENCH", buildCjpeg, 200, 256);
    add("djpeg", "MEDIABENCH", buildDjpeg, 200, 256);
    add("epic", "MEDIABENCH", buildEpic, 160, 320);
    add("unepic", "MEDIABENCH", buildUnepic, 160, 320);
    add("g721decode", "MEDIABENCH", buildG721Decode, 400, 512);
    add("g721encode", "MEDIABENCH", buildG721Encode, 400, 512);
    add("mpeg2dec", "MEDIABENCH", buildMpeg2Dec, 16, 24);
    add("mpeg2enc", "MEDIABENCH", buildMpeg2Enc, 300, 600);
    add("pegwitdec", "MEDIABENCH", buildPegwitDec, 200, 256);
    add("pegwitenc", "MEDIABENCH", buildPegwitEnc, 200, 256);
    add("rawcaudio", "MEDIABENCH", buildRawCAudio, 800, 1024);
    add("rawdaudio", "MEDIABENCH", buildRawDAudio, 800, 1024);

    return list;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = makeWorkloads();
    return workloads;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

std::vector<const Workload *>
workloadsInSuite(const std::string &suite)
{
    std::vector<const Workload *> selected;
    for (const Workload &w : allWorkloads()) {
        if (w.suite == suite)
            selected.push_back(&w);
    }
    return selected;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "SPEC2K-INT", "SPEC2K-FP", "MEDIABENCH"};
    return names;
}

} // namespace encore::workloads
