/**
 * @file
 * 179.art — adaptive-resonance neural network (SPEC2K-FP stand-in).
 *
 * The recognition pass is a pure read-compute-write layer evaluation
 * (idempotent); the learning pass nudges a strided subset of the
 * weights in place — a small, cheap-to-checkpoint WAR set.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildArt()
{
    auto module = std::make_unique<ir::Module>("179.art");
    B b(module.get());

    const auto input = b.global("input", 32);
    const auto weights = b.global("weights", 32);
    const auto act = b.global("act", 32);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *init = b.newBlock("init");
    auto *epochs = b.newBlock("epochs");
    auto *forward = b.newBlock("forward");
    auto *learn_init = b.newBlock("learn_init");
    auto *learn = b.newBlock("learn");
    auto *epoch_next = b.newBlock("epoch_next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto i = b.mov(B::imm(0));
    const auto e = b.mov(B::imm(0));
    const auto sum = b.mov(B::fpImm(0.0));
    b.jmp(init);

    b.setInsertPoint(init);
    const auto fi = b.i2f(B::reg(i));
    const auto inv = b.fmul(B::reg(fi), B::fpImm(0.03125));
    b.store(AddrExpr::makeObject(input, B::reg(i)), B::reg(inv));
    const auto w0 = b.fadd(B::reg(inv), B::fpImm(0.5));
    b.store(AddrExpr::makeObject(weights, B::reg(i)), B::reg(w0));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto ic = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(ic), init, epochs);

    b.setInsertPoint(epochs);
    b.movTo(i, B::imm(0));
    b.jmp(forward);

    // forward: act[i] = input[i] * weights[i] (idempotent).
    b.setInsertPoint(forward);
    const auto x = b.load(AddrExpr::makeObject(input, B::reg(i)));
    const auto w = b.load(AddrExpr::makeObject(weights, B::reg(i)));
    const auto a = b.fmul(B::reg(x), B::reg(w));
    b.store(AddrExpr::makeObject(act, B::reg(i)), B::reg(a));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto fc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(fc), forward, learn_init);

    // learn: every 4th weight is nudged toward the activation.
    b.setInsertPoint(learn_init);
    b.movTo(i, B::imm(0));
    b.jmp(learn);

    b.setInsertPoint(learn);
    const auto wv = b.load(AddrExpr::makeObject(weights, B::reg(i)));
    const auto av = b.load(AddrExpr::makeObject(act, B::reg(i)));
    const auto err = b.fsub(B::reg(av), B::reg(wv));
    const auto step = b.fmul(B::reg(err), B::fpImm(0.01));
    const auto w2 = b.fadd(B::reg(wv), B::reg(step));
    b.store(AddrExpr::makeObject(weights, B::reg(i)), B::reg(w2));
    b.addTo(i, B::reg(i), B::imm(4));
    const auto lc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(lc), learn, epoch_next);

    b.setInsertPoint(epoch_next);
    b.addTo(e, B::reg(e), B::imm(1));
    const auto rounds = b.shr(B::reg(n), B::imm(3));
    const auto ec = b.cmpLt(B::reg(e), B::reg(rounds));
    b.br(B::reg(ec), epochs, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(i, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto av2 = b.load(AddrExpr::makeObject(act, B::reg(i)));
    b.emitTo(sum, Opcode::FAdd, B::reg(sum), B::reg(av2));
    b.addTo(i, B::reg(i), B::imm(1));
    const auto rc = b.cmpLt(B::reg(i), B::imm(32));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    const auto scaled = b.fmul(B::reg(sum), B::fpImm(65536.0));
    const auto out = b.f2i(B::reg(scaled));
    b.store(AddrExpr::makeObject(result), B::reg(out));
    b.ret(B::reg(out));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
