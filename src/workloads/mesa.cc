/**
 * @file
 * 177.mesa — rasterization with z-test and blending (SPEC2K-FP
 * stand-in).
 *
 * Every pixel performs read-modify-write updates on both the depth
 * buffer and the frame buffer. Checkpointing them would log an undo
 * record per pixel — far beyond the per-region storage budget — so the
 * rasterizer loop stays unprotected. The paper singles out mesa as a
 * benchmark that could not approach the 20% overhead target without
 * losing recoverability coverage.
 */
#include "workloads/builders.h"

#include "ir/builder.h"

namespace encore::workloads {

namespace {
using B = ir::IRBuilder;
using ir::AddrExpr;
using ir::Opcode;
} // namespace

std::unique_ptr<ir::Module>
buildMesa()
{
    auto module = std::make_unique<ir::Module>("177.mesa");
    B b(module.get());

    const auto fb = b.global("fb", 64);
    const auto zb = b.global("zb", 64);
    const auto texture = b.global("texture", 32);
    const auto errlog = b.global("errlog", 1);
    const auto result = b.global("result", 1);

    b.beginFunction("main", 1);
    auto *tex_init = b.newBlock("tex_init");
    auto *clear = b.newBlock("clear");
    auto *raster = b.newBlock("raster");
    auto *zpass = b.newBlock("zpass");
    auto *next = b.newBlock("next");
    auto *reduce_init = b.newBlock("reduce_init");
    auto *reduce = b.newBlock("reduce");
    auto *done = b.newBlock("done");

    const ir::RegId n = 0;
    const auto k = b.mov(B::imm(0));
    const auto t = b.mov(B::imm(0));
    const auto acc = b.mov(B::imm(0));
    b.jmp(tex_init);

    b.setInsertPoint(tex_init);
    const auto tex = b.mul(B::reg(k), B::imm(5));
    const auto texv = b.band(B::reg(tex), B::imm(255));
    b.store(AddrExpr::makeObject(texture, B::reg(k)), B::reg(texv));
    b.addTo(k, B::reg(k), B::imm(1));
    const auto tc = b.cmpLt(B::reg(k), B::imm(32));
    b.br(B::reg(tc), tex_init, clear);

    b.setInsertPoint(clear);
    b.movTo(k, B::imm(0));
    auto *clear_loop = b.newBlock("clear_loop");
    b.jmp(clear_loop);

    b.setInsertPoint(clear_loop);
    b.store(AddrExpr::makeObject(fb, B::reg(k)), B::imm(0));
    b.store(AddrExpr::makeObject(zb, B::reg(k)), B::imm(255));
    b.addTo(k, B::reg(k), B::imm(1));
    const auto cc = b.cmpLt(B::reg(k), B::imm(64));
    b.br(B::reg(cc), clear_loop, raster);

    // raster: one fragment per step; z-test then alpha blend.
    b.setInsertPoint(raster);
    const auto h = b.mul(B::reg(t), B::imm(2654435761LL));
    const auto hp = b.shr(B::reg(h), B::imm(16));
    const auto pix = b.band(B::reg(hp), B::imm(63));
    const auto hz = b.shr(B::reg(h), B::imm(26));
    const auto z = b.band(B::reg(hz), B::imm(255));
    const auto zcur = b.load(AddrExpr::makeObject(zb, B::reg(pix)));
    // Degenerate-fragment guard: depth values are masked to 8 bits, so
    // this never fires — dynamically dead error handling.
    auto *frag_err = b.newBlock("frag_err");
    auto *ztest = b.newBlock("ztest");
    const auto degenerate = b.cmpGt(B::reg(z), B::imm(4096));
    b.br(B::reg(degenerate), frag_err, ztest);

    b.setInsertPoint(frag_err);
    const auto ec = b.load(AddrExpr::makeObject(errlog));
    const auto ec2 = b.add(B::reg(ec), B::imm(1));
    b.store(AddrExpr::makeObject(errlog), B::reg(ec2));
    b.jmp(ztest);

    // Every fragment alpha-blends into the frame buffer: a WAR per
    // fragment whose undo log outgrows the checkpoint storage budget —
    // mesa is the paper's example of a benchmark that cannot approach
    // the overhead target without giving up recoverability coverage.
    b.setInsertPoint(ztest);
    const auto ti = b.band(B::reg(t), B::imm(31));
    const auto color = b.load(AddrExpr::makeObject(texture, B::reg(ti)));
    const auto old = b.load(AddrExpr::makeObject(fb, B::reg(pix)));
    const auto blend0 = b.mul(B::reg(old), B::imm(3));
    const auto blend1 = b.add(B::reg(blend0), B::reg(color));
    const auto blended = b.shr(B::reg(blend1), B::imm(2));
    b.store(AddrExpr::makeObject(fb, B::reg(pix)), B::reg(blended));
    b.emitTo(acc, Opcode::Add, B::reg(acc), B::imm(1));
    const auto closer = b.cmpLt(B::reg(z), B::reg(zcur));
    b.br(B::reg(closer), zpass, next);

    b.setInsertPoint(zpass);
    // WAR on the depth buffer for fragments that win the z-test.
    b.store(AddrExpr::makeObject(zb, B::reg(pix)), B::reg(z));
    b.jmp(next);

    b.setInsertPoint(next);
    b.addTo(t, B::reg(t), B::imm(1));
    const auto more = b.cmpLt(B::reg(t), B::reg(n));
    b.br(B::reg(more), raster, reduce_init);

    b.setInsertPoint(reduce_init);
    b.movTo(k, B::imm(0));
    b.jmp(reduce);

    b.setInsertPoint(reduce);
    const auto fv = b.load(AddrExpr::makeObject(fb, B::reg(k)));
    const auto zv = b.load(AddrExpr::makeObject(zb, B::reg(k)));
    const auto acc3 = b.mul(B::reg(acc), B::imm(3));
    const auto acc4 = b.add(B::reg(acc3), B::reg(fv));
    b.emitTo(acc, Opcode::Add, B::reg(acc4), B::reg(zv));
    b.addTo(k, B::reg(k), B::imm(1));
    const auto rc = b.cmpLt(B::reg(k), B::imm(64));
    b.br(B::reg(rc), reduce, done);

    b.setInsertPoint(done);
    b.store(AddrExpr::makeObject(result), B::reg(acc));
    b.ret(B::reg(acc));
    b.endFunction();

    module->resolveCalls();
    return module;
}

} // namespace encore::workloads
