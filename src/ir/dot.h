/**
 * @file
 * Graphviz (DOT) export of function CFGs, optionally overlaying
 * Encore's region decisions — the quickest way to *see* the SEME
 * partitioning, the preheaders, and the recovery blocks.
 */
#ifndef ENCORE_IR_DOT_H
#define ENCORE_IR_DOT_H

#include <iosfwd>
#include <map>
#include <string>

#include "ir/function.h"

namespace encore::ir {

/// Visual annotation for one block in the DOT output.
struct DotBlockStyle
{
    /// Fill color (Graphviz color name or #rrggbb); empty = default.
    std::string fill;
    /// Extra label line under the block name (e.g. "region 3, ckpt").
    std::string note;
};

/**
 * Writes `func` as a digraph. Nodes are basic blocks labelled with
 * their name, instruction count, and (optionally) per-block styles;
 * edges follow the terminators, with branch edges labelled T/F.
 */
void writeDot(std::ostream &os, const Function &func,
              const std::map<BlockId, DotBlockStyle> &styles = {});

/// Convenience: DOT text as a string.
std::string functionToDot(
    const Function &func,
    const std::map<BlockId, DotBlockStyle> &styles = {});

} // namespace encore::ir

#endif // ENCORE_IR_DOT_H
