#include "ir/module.h"

#include "support/diagnostics.h"

namespace encore::ir {

Function *
Module::createFunction(const std::string &name, unsigned num_params)
{
    ENCORE_ASSERT(function_names_.find(name) == function_names_.end(),
                  "duplicate function name '" + name + "'");
    functions_.push_back(std::make_unique<Function>(this, name, num_params));
    Function *f = functions_.back().get();
    function_names_[name] = f;
    return f;
}

Function *
Module::functionByName(const std::string &name) const
{
    auto it = function_names_.find(name);
    return it == function_names_.end() ? nullptr : it->second;
}

void
Module::resolveCalls()
{
    for (auto &f : functions_) {
        for (auto &bb : f->blocks()) {
            for (auto &inst : bb->instructions()) {
                if (inst.opcode() != Opcode::Call)
                    continue;
                Function *callee = functionByName(inst.calleeName());
                if (!callee) {
                    fatalf("call to unknown function '", inst.calleeName(),
                           "' in '", f->name(), "'");
                }
                inst.setCallee(callee);
            }
        }
    }
}

ObjectId
Module::addGlobal(const std::string &name, std::uint32_t size_words)
{
    ENCORE_ASSERT(object_names_.find(name) == object_names_.end(),
                  "duplicate object name '" + name + "'");
    ENCORE_ASSERT(size_words > 0, "object must have positive size");
    const ObjectId id = static_cast<ObjectId>(objects_.size());
    objects_.push_back(MemObject{id, name, size_words, true});
    object_names_[name] = id;
    return id;
}

ObjectId
Module::addLocal(Function *owner, const std::string &name,
                 std::uint32_t size_words)
{
    ENCORE_ASSERT(owner != nullptr, "local object needs an owner");
    const std::string qualified = owner->name() + "." + name;
    ENCORE_ASSERT(object_names_.find(qualified) == object_names_.end(),
                  "duplicate object name '" + qualified + "'");
    ENCORE_ASSERT(size_words > 0, "object must have positive size");
    const ObjectId id = static_cast<ObjectId>(objects_.size());
    objects_.push_back(MemObject{id, qualified, size_words, false});
    object_names_[qualified] = id;
    owner->noteLocalObject(id);
    return id;
}

const MemObject &
Module::object(ObjectId id) const
{
    ENCORE_ASSERT(id < objects_.size(), "object id out of range");
    return objects_[id];
}

ObjectId
Module::objectByName(const std::string &name) const
{
    auto it = object_names_.find(name);
    return it == object_names_.end() ? kInvalidObject : it->second;
}

} // namespace encore::ir
