/**
 * @file
 * Basic block: a named, ordered list of instructions ending in a
 * terminator, plus the CFG edges derived from that terminator.
 */
#ifndef ENCORE_IR_BASIC_BLOCK_H
#define ENCORE_IR_BASIC_BLOCK_H

#include <list>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace encore::ir {

class Function;

/// Index of a block within its function; dense, usable as a bitvector
/// index by the analyses.
using BlockId = std::uint32_t;

class BasicBlock
{
  public:
    BasicBlock(Function *parent, BlockId id, std::string name)
        : parent_(parent), id_(id), name_(std::move(name))
    {
    }

    Function *parent() const { return parent_; }
    BlockId id() const { return id_; }
    const std::string &name() const { return name_; }

    // --- Instruction list ---------------------------------------------
    std::list<Instruction> &instructions() { return instructions_; }
    const std::list<Instruction> &instructions() const
    {
        return instructions_;
    }

    bool empty() const { return instructions_.empty(); }
    std::size_t size() const { return instructions_.size(); }

    /// Appends an instruction and returns a stable pointer to it.
    Instruction *append(Instruction inst);

    /// Inserts before `before` (which must be in this block) and returns
    /// a stable pointer to the inserted copy.
    Instruction *insertBefore(Instruction *before, Instruction inst);

    /// Inserts at the top of the block (before the first instruction).
    Instruction *insertFront(Instruction inst);

    /// The terminator, or nullptr if the block is not yet terminated.
    Instruction *terminator();
    const Instruction *terminator() const;

    // --- CFG edges ------------------------------------------------------
    /// Successors in terminator order (taken edge first for Br).
    std::vector<BasicBlock *> successors() const;

    /// Predecessors; maintained by Function::recomputeCfg().
    const std::vector<BasicBlock *> &predecessors() const { return preds_; }

    /// @internal Used by Function::recomputeCfg().
    void clearPreds() { preds_.clear(); }
    void addPred(BasicBlock *bb) { preds_.push_back(bb); }

  private:
    Function *parent_;
    BlockId id_;
    std::string name_;
    std::list<Instruction> instructions_;
    std::vector<BasicBlock *> preds_;
};

} // namespace encore::ir

#endif // ENCORE_IR_BASIC_BLOCK_H
