/**
 * @file
 * Fluent construction API for the Encore IR.
 *
 * The builder tracks a current insertion block and allocates fresh
 * destination registers on demand; the *To variants write a specific
 * register, which is how non-SSA loop-carried variables (counters,
 * accumulators) are expressed. All 23 synthetic workloads are written
 * against this interface.
 */
#ifndef ENCORE_IR_BUILDER_H
#define ENCORE_IR_BUILDER_H

#include <string>
#include <vector>

#include "ir/module.h"

namespace encore::ir {

class IRBuilder
{
  public:
    explicit IRBuilder(Module *module) : module_(module) {}

    Module *module() const { return module_; }
    Function *function() const { return func_; }
    BasicBlock *insertBlock() const { return bb_; }

    // --- Function / block management ------------------------------------
    /// Starts a new function and creates+selects its entry block.
    Function *beginFunction(const std::string &name, unsigned num_params,
                            const std::string &entry_name = "entry");

    /// Creates a block in the current function (does not move the
    /// insertion point).
    BasicBlock *newBlock(const std::string &name);

    /// Moves the insertion point to the end of `bb`.
    void setInsertPoint(BasicBlock *bb);

    /// Finishes the current function: recomputes CFG edges.
    void endFunction();

    // --- Operand helpers ---------------------------------------------------
    static Operand reg(RegId r) { return Operand::makeReg(r); }
    static Operand imm(std::int64_t v) { return Operand::makeImm(v); }
    static Operand fpImm(double v) { return Operand::makeFpImm(v); }

    // --- Memory objects -----------------------------------------------------
    ObjectId global(const std::string &name, std::uint32_t size_words);
    ObjectId local(const std::string &name, std::uint32_t size_words);

    // --- Generic emitters ----------------------------------------------------
    /// Emits `dest = op(a, b, c)` with a freshly allocated dest.
    RegId emit(Opcode op, Operand a = Operand::none(),
               Operand b = Operand::none(), Operand c = Operand::none());

    /// Emits `dest = op(a, b, c)` into an existing register.
    void emitTo(RegId dest, Opcode op, Operand a = Operand::none(),
                Operand b = Operand::none(), Operand c = Operand::none());

    // --- Convenience wrappers -----------------------------------------------
    RegId mov(Operand a) { return emit(Opcode::Mov, a); }
    void movTo(RegId d, Operand a) { emitTo(d, Opcode::Mov, a); }
    RegId add(Operand a, Operand b) { return emit(Opcode::Add, a, b); }
    void addTo(RegId d, Operand a, Operand b)
    {
        emitTo(d, Opcode::Add, a, b);
    }
    RegId sub(Operand a, Operand b) { return emit(Opcode::Sub, a, b); }
    RegId mul(Operand a, Operand b) { return emit(Opcode::Mul, a, b); }
    RegId div(Operand a, Operand b) { return emit(Opcode::Div, a, b); }
    RegId rem(Operand a, Operand b) { return emit(Opcode::Rem, a, b); }
    RegId band(Operand a, Operand b) { return emit(Opcode::And, a, b); }
    RegId bor(Operand a, Operand b) { return emit(Opcode::Or, a, b); }
    RegId bxor(Operand a, Operand b) { return emit(Opcode::Xor, a, b); }
    RegId shl(Operand a, Operand b) { return emit(Opcode::Shl, a, b); }
    RegId shr(Operand a, Operand b) { return emit(Opcode::Shr, a, b); }
    RegId neg(Operand a) { return emit(Opcode::Neg, a); }
    RegId bnot(Operand a) { return emit(Opcode::Not, a); }
    RegId fadd(Operand a, Operand b) { return emit(Opcode::FAdd, a, b); }
    RegId fsub(Operand a, Operand b) { return emit(Opcode::FSub, a, b); }
    RegId fmul(Operand a, Operand b) { return emit(Opcode::FMul, a, b); }
    RegId fdiv(Operand a, Operand b) { return emit(Opcode::FDiv, a, b); }
    RegId i2f(Operand a) { return emit(Opcode::IntToFp, a); }
    RegId f2i(Operand a) { return emit(Opcode::FpToInt, a); }
    RegId cmpEq(Operand a, Operand b) { return emit(Opcode::CmpEq, a, b); }
    RegId cmpNe(Operand a, Operand b) { return emit(Opcode::CmpNe, a, b); }
    RegId cmpLt(Operand a, Operand b) { return emit(Opcode::CmpLt, a, b); }
    RegId cmpLe(Operand a, Operand b) { return emit(Opcode::CmpLe, a, b); }
    RegId cmpGt(Operand a, Operand b) { return emit(Opcode::CmpGt, a, b); }
    RegId cmpGe(Operand a, Operand b) { return emit(Opcode::CmpGe, a, b); }
    RegId fcmpLt(Operand a, Operand b)
    {
        return emit(Opcode::FCmpLt, a, b);
    }
    RegId select(Operand cond, Operand t, Operand f)
    {
        return emit(Opcode::Select, cond, t, f);
    }

    // --- Memory ---------------------------------------------------------------
    RegId load(AddrExpr addr);
    void loadTo(RegId dest, AddrExpr addr);
    void store(AddrExpr addr, Operand value);
    RegId lea(AddrExpr addr);

    // --- Calls ------------------------------------------------------------------
    /// Emits a call whose return value lands in a fresh register.
    RegId call(const std::string &callee, std::vector<Operand> args);
    /// Emits a call discarding the return value.
    void callVoid(const std::string &callee, std::vector<Operand> args);

    // --- Terminators --------------------------------------------------------------
    void br(Operand cond, BasicBlock *if_true, BasicBlock *if_false);
    void jmp(BasicBlock *target);
    void ret(Operand value = Operand::none());

  private:
    void noteOperand(const Operand &op);
    void noteAddr(const AddrExpr &addr);
    Instruction *push(Instruction inst);

    Module *module_;
    Function *func_ = nullptr;
    BasicBlock *bb_ = nullptr;
};

} // namespace encore::ir

#endif // ENCORE_IR_BUILDER_H
