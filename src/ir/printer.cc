#include "ir/printer.h"

#include <ostream>
#include <sstream>

#include "support/diagnostics.h"

namespace encore::ir {

namespace {

/// Prints a register as rN.
std::string
regName(RegId reg)
{
    return "r" + std::to_string(reg);
}

/// Prints an object reference: @name for globals, %short for locals of
/// the containing function.
std::string
objectRef(const Module &module, const Function &func, ObjectId id)
{
    const MemObject &obj = module.object(id);
    if (obj.is_global)
        return "@" + obj.name;
    const std::string prefix = func.name() + ".";
    ENCORE_ASSERT(obj.name.rfind(prefix, 0) == 0,
                  "local object referenced outside its function");
    return "%" + obj.name.substr(prefix.size());
}

std::string
operandText(const Operand &op)
{
    switch (op.kind) {
      case Operand::Kind::None:
        return "<none>";
      case Operand::Kind::Reg:
        return regName(op.reg);
      case Operand::Kind::Imm:
        return std::to_string(op.imm);
    }
    return "<bad>";
}

std::string
addrText(const Module &module, const Function &func, const AddrExpr &addr)
{
    std::string base;
    switch (addr.base_kind) {
      case AddrExpr::BaseKind::Object:
        base = objectRef(module, func, addr.object);
        break;
      case AddrExpr::BaseKind::Reg:
        base = regName(addr.base_reg);
        break;
      case AddrExpr::BaseKind::None:
        return "[<none>]";
    }
    if (addr.offset.isImm() && addr.offset.imm == 0)
        return "[" + base + "]";
    return "[" + base + " + " + operandText(addr.offset) + "]";
}

} // namespace

std::string
printInstruction(const Module &module, const Function &func,
                 const Instruction &inst)
{
    std::ostringstream os;
    const Opcode op = inst.opcode();

    switch (op) {
      case Opcode::Load:
        os << regName(inst.dest()) << " = load "
           << addrText(module, func, inst.addr());
        return os.str();
      case Opcode::Lea:
        os << regName(inst.dest()) << " = lea "
           << addrText(module, func, inst.addr());
        return os.str();
      case Opcode::Store:
        os << "store " << addrText(module, func, inst.addr()) << ", "
           << operandText(inst.a());
        return os.str();
      case Opcode::Call: {
        if (inst.hasDest())
            os << regName(inst.dest()) << " = ";
        os << "call @" << inst.calleeName() << "(";
        for (std::size_t i = 0; i < inst.args().size(); ++i) {
            if (i)
                os << ", ";
            os << operandText(inst.args()[i]);
        }
        os << ")";
        return os.str();
      }
      case Opcode::Br:
        os << "br " << operandText(inst.a()) << ", "
           << inst.succ0()->name() << ", " << inst.succ1()->name();
        return os.str();
      case Opcode::Jmp:
        os << "jmp " << inst.succ0()->name();
        return os.str();
      case Opcode::Ret:
        os << "ret";
        if (!inst.a().isNone())
            os << " " << operandText(inst.a());
        return os.str();
      case Opcode::RegionEnter:
        os << "region.enter " << inst.regionId();
        return os.str();
      case Opcode::CkptMem:
        os << "ckpt.mem " << addrText(module, func, inst.addr());
        return os.str();
      case Opcode::CkptReg:
        os << "ckpt.reg " << operandText(inst.a());
        return os.str();
      case Opcode::Restore:
        os << "restore " << inst.regionId();
        return os.str();
      default:
        break;
    }

    // Generic register-to-register form: dest = op a [, b [, c]].
    os << regName(inst.dest()) << " = " << opcodeName(op);
    const int n = opcodeNumOperands(op);
    for (int i = 0; i < n; ++i) {
        os << (i ? ", " : " ");
        const Operand &operand = i == 0 ? inst.a()
                               : i == 1 ? inst.b()
                                        : inst.c();
        os << operandText(operand);
    }
    return os.str();
}

void
printFunction(std::ostream &os, const Module &module, const Function &func)
{
    os << "func @" << func.name() << "(" << func.numParams() << ") {\n";
    for (ObjectId id : func.localObjects()) {
        const MemObject &obj = module.object(id);
        const std::string prefix = func.name() + ".";
        os << "  local %" << obj.name.substr(prefix.size()) << " "
           << obj.size << "\n";
    }
    for (unsigned p = 0; p < func.numParams(); ++p) {
        const auto *targets = func.paramPointsTo(p);
        if (!targets)
            continue;
        os << "  points r" << p << " ->";
        for (std::size_t i = 0; i < targets->size(); ++i) {
            os << (i ? ", " : " ")
               << objectRef(module, func, (*targets)[i]);
        }
        os << "\n";
    }
    for (const auto &bb : func.blocks()) {
        os << "  bb " << bb->name() << ":\n";
        for (const auto &inst : bb->instructions())
            os << "    " << printInstruction(module, func, inst) << "\n";
    }
    os << "}\n";
}

void
printModule(std::ostream &os, const Module &module)
{
    os << "module \"" << module.name() << "\"\n";
    for (const MemObject &obj : module.objects()) {
        if (obj.is_global)
            os << "global @" << obj.name << " " << obj.size << "\n";
    }
    for (const auto &func : module.functions()) {
        os << "\n";
        printFunction(os, module, *func);
    }
}

std::string
moduleToString(const Module &module)
{
    std::ostringstream os;
    printModule(os, module);
    return os.str();
}

} // namespace encore::ir
