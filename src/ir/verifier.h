/**
 * @file
 * Structural well-formedness checks for modules. Run by tests and by the
 * Encore pipeline before analysis: the dataflow equations assume every
 * block has exactly one terminator, every edge targets a block of the
 * same function, register indices are within the declared range, and
 * object references are valid.
 */
#ifndef ENCORE_IR_VERIFIER_H
#define ENCORE_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/module.h"

namespace encore::ir {

/// Returns a list of human-readable problems; empty means well-formed.
std::vector<std::string> verifyModule(const Module &module);

/// Convenience: panics with the first problem if the module is
/// malformed. Used at pipeline entry.
void verifyOrDie(const Module &module);

} // namespace encore::ir

#endif // ENCORE_IR_VERIFIER_H
