#include "ir/instruction.h"

namespace encore::ir {

std::vector<Operand>
Instruction::usedOperands() const
{
    std::vector<Operand> used;
    const int n = opcodeNumOperands(opcode_);
    for (int i = 0; i < n; ++i) {
        if (!ops_[i].isNone())
            used.push_back(ops_[i]);
    }
    // Ret's operand is optional: a void return leaves it None and the
    // loop above already skips it. Address expressions contribute their
    // register uses separately (see Liveness), as do call arguments.
    return used;
}

} // namespace encore::ir
