/**
 * @file
 * Opcode enumeration and static opcode properties for the Encore IR.
 *
 * The IR is a compact, non-SSA register machine: enough surface to write
 * realistic workloads (integer/floating arithmetic, loads/stores through
 * symbolic address expressions, calls, structured and unstructured control
 * flow) while keeping the dataflow analyses of the paper tractable and
 * readable. The last four opcodes are the Encore runtime pseudo-ops that
 * the instrumentation pass of §3.2 inserts; they are no-ops for program
 * semantics and are interpreted by the recovery runtime.
 */
#ifndef ENCORE_IR_OPCODE_H
#define ENCORE_IR_OPCODE_H

#include <cstdint>
#include <string_view>

namespace encore::ir {

enum class Opcode : std::uint8_t {
    // Data movement and integer arithmetic: dest = op(a [, b]).
    Mov,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Neg,
    Not,

    // Floating point (registers hold the bit pattern of a double).
    FAdd,
    FSub,
    FMul,
    FDiv,
    IntToFp,
    FpToInt,

    // Comparisons produce 0/1. The F-variant compares as doubles.
    CmpEq,
    CmpNe,
    CmpLt,
    CmpLe,
    CmpGt,
    CmpGe,
    FCmpLt,

    // dest = a ? b : c
    Select,

    // Memory. Lea materializes a pointer to an address expression;
    // Load/Store access one 64-bit word.
    Lea,
    Load,
    Store,

    // Direct call; arguments are copied into the callee's r0..rN-1.
    Call,

    // Terminators.
    Br,  // conditional: a != 0 -> succ0 else succ1
    Jmp, // unconditional -> succ0
    Ret, // optional operand a is the return value

    // Encore recovery runtime pseudo-ops (§3.2). Inserted by the
    // Instrumenter, executed by the interpreter's recovery runtime.
    RegionEnter, // publish recovery target, reset checkpoint buffer
    CkptMem,     // save (address, current word) into the active buffer
    CkptReg,     // save (register, current value) into the active buffer
    Restore,     // undo the active buffer in reverse order

    NumOpcodes,
};

/// Mnemonic used by the printer and parser, e.g. "add", "ckpt.mem".
std::string_view opcodeName(Opcode op);

/// Parses a mnemonic; returns NumOpcodes if unrecognized.
Opcode opcodeFromName(std::string_view name);

/// True if the opcode defines a destination register.
bool opcodeHasDest(Opcode op);

/// Number of register/immediate operands the opcode consumes (excluding
/// call arguments and address expressions).
int opcodeNumOperands(Opcode op);

/// True for Br/Jmp/Ret, which must terminate a basic block.
bool opcodeIsTerminator(Opcode op);

/// True if the opcode reads memory (Load; CkptMem reads to snapshot).
bool opcodeReadsMemory(Opcode op);

/// True if the opcode writes memory (Store).
bool opcodeWritesMemory(Opcode op);

/// True if the opcode carries an address expression operand.
bool opcodeHasAddress(Opcode op);

/// True for the recovery-runtime pseudo-ops.
bool opcodeIsPseudo(Opcode op);

} // namespace encore::ir

#endif // ENCORE_IR_OPCODE_H
