#include "ir/operand.h"

#include <cstring>

namespace encore::ir {

double
bitsToDouble(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

std::uint64_t
doubleToBits(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

Operand
Operand::makeFpImm(double value)
{
    return makeImm(static_cast<std::int64_t>(doubleToBits(value)));
}

} // namespace encore::ir
