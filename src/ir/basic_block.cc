#include "ir/basic_block.h"

#include "support/diagnostics.h"

namespace encore::ir {

Instruction *
BasicBlock::append(Instruction inst)
{
    instructions_.push_back(std::move(inst));
    return &instructions_.back();
}

Instruction *
BasicBlock::insertBefore(Instruction *before, Instruction inst)
{
    for (auto it = instructions_.begin(); it != instructions_.end(); ++it) {
        if (&*it == before) {
            auto inserted = instructions_.insert(it, std::move(inst));
            return &*inserted;
        }
    }
    panicf("insertBefore: anchor instruction not found in block '", name_,
           "'");
}

Instruction *
BasicBlock::insertFront(Instruction inst)
{
    instructions_.push_front(std::move(inst));
    return &instructions_.front();
}

Instruction *
BasicBlock::terminator()
{
    if (instructions_.empty())
        return nullptr;
    Instruction &last = instructions_.back();
    return last.isTerminator() ? &last : nullptr;
}

const Instruction *
BasicBlock::terminator() const
{
    return const_cast<BasicBlock *>(this)->terminator();
}

std::vector<BasicBlock *>
BasicBlock::successors() const
{
    std::vector<BasicBlock *> succs;
    const Instruction *term = terminator();
    if (!term)
        return succs;
    switch (term->opcode()) {
      case Opcode::Br:
        succs.push_back(term->succ0());
        succs.push_back(term->succ1());
        break;
      case Opcode::Jmp:
        succs.push_back(term->succ0());
        break;
      case Opcode::Ret:
        break;
      default:
        break;
    }
    return succs;
}

} // namespace encore::ir
