/**
 * @file
 * Module: the unit of compilation — functions plus the module-wide
 * memory-object table (globals and function-local arrays share one id
 * space so alias queries and the interpreter's memory can be keyed by
 * a single ObjectId).
 */
#ifndef ENCORE_IR_MODULE_H
#define ENCORE_IR_MODULE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"

namespace encore::ir {

class Module
{
  public:
    explicit Module(std::string name = "module") : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    // --- Functions ---------------------------------------------------------
    Function *createFunction(const std::string &name, unsigned num_params);
    Function *functionByName(const std::string &name) const;
    const std::vector<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    /// Resolves Call instructions' callee names to Function pointers.
    /// Fatal if a callee does not exist in the module.
    void resolveCalls();

    // --- Memory objects -----------------------------------------------------
    /// Creates a global object visible to every function.
    ObjectId addGlobal(const std::string &name, std::uint32_t size_words);

    /// Creates a function-local (stack) object.
    ObjectId addLocal(Function *owner, const std::string &name,
                      std::uint32_t size_words);

    const MemObject &object(ObjectId id) const;
    const std::vector<MemObject> &objects() const { return objects_; }
    ObjectId objectByName(const std::string &name) const;

  private:
    std::string name_;
    std::vector<std::unique_ptr<Function>> functions_;
    std::map<std::string, Function *> function_names_;
    std::vector<MemObject> objects_;
    std::map<std::string, ObjectId> object_names_;
};

} // namespace encore::ir

#endif // ENCORE_IR_MODULE_H
