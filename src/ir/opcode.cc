#include "ir/opcode.h"

#include <array>

#include "support/diagnostics.h"

namespace encore::ir {

namespace {

struct OpcodeInfo
{
    std::string_view name;
    bool has_dest;
    int num_operands;
    bool terminator;
    bool reads_mem;
    bool writes_mem;
    bool has_addr;
    bool pseudo;
};

constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::NumOpcodes);

constexpr std::array<OpcodeInfo, kNumOpcodes> kInfo = {{
    // name        dest ops term rdM  wrM  addr pseudo
    {"mov",        true, 1, false, false, false, false, false},
    {"add",        true, 2, false, false, false, false, false},
    {"sub",        true, 2, false, false, false, false, false},
    {"mul",        true, 2, false, false, false, false, false},
    {"div",        true, 2, false, false, false, false, false},
    {"rem",        true, 2, false, false, false, false, false},
    {"and",        true, 2, false, false, false, false, false},
    {"or",         true, 2, false, false, false, false, false},
    {"xor",        true, 2, false, false, false, false, false},
    {"shl",        true, 2, false, false, false, false, false},
    {"shr",        true, 2, false, false, false, false, false},
    {"neg",        true, 1, false, false, false, false, false},
    {"not",        true, 1, false, false, false, false, false},
    {"fadd",       true, 2, false, false, false, false, false},
    {"fsub",       true, 2, false, false, false, false, false},
    {"fmul",       true, 2, false, false, false, false, false},
    {"fdiv",       true, 2, false, false, false, false, false},
    {"i2f",        true, 1, false, false, false, false, false},
    {"f2i",        true, 1, false, false, false, false, false},
    {"cmpeq",      true, 2, false, false, false, false, false},
    {"cmpne",      true, 2, false, false, false, false, false},
    {"cmplt",      true, 2, false, false, false, false, false},
    {"cmple",      true, 2, false, false, false, false, false},
    {"cmpgt",      true, 2, false, false, false, false, false},
    {"cmpge",      true, 2, false, false, false, false, false},
    {"fcmplt",     true, 2, false, false, false, false, false},
    {"select",     true, 3, false, false, false, false, false},
    {"lea",        true, 0, false, false, false, true,  false},
    {"load",       true, 0, false, true,  false, true,  false},
    {"store",      false, 1, false, false, true, true,  false},
    {"call",       false, 0, false, true,  true, false, false},
    {"br",         false, 1, true,  false, false, false, false},
    {"jmp",        false, 0, true,  false, false, false, false},
    {"ret",        false, 1, true,  false, false, false, false},
    {"region.enter", false, 0, false, false, false, false, true},
    {"ckpt.mem",   false, 0, false, true,  false, true,  true},
    {"ckpt.reg",   false, 1, false, false, false, false, true},
    {"restore",    false, 0, false, false, false, false, true},
}};

const OpcodeInfo &
info(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    ENCORE_ASSERT(idx < kNumOpcodes, "opcode out of range");
    return kInfo[idx];
}

} // namespace

std::string_view
opcodeName(Opcode op)
{
    return info(op).name;
}

Opcode
opcodeFromName(std::string_view name)
{
    for (std::size_t i = 0; i < kNumOpcodes; ++i) {
        if (kInfo[i].name == name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NumOpcodes;
}

bool
opcodeHasDest(Opcode op)
{
    return info(op).has_dest;
}

int
opcodeNumOperands(Opcode op)
{
    return info(op).num_operands;
}

bool
opcodeIsTerminator(Opcode op)
{
    return info(op).terminator;
}

bool
opcodeReadsMemory(Opcode op)
{
    return info(op).reads_mem;
}

bool
opcodeWritesMemory(Opcode op)
{
    return info(op).writes_mem;
}

bool
opcodeHasAddress(Opcode op)
{
    return info(op).has_addr;
}

bool
opcodeIsPseudo(Opcode op)
{
    return info(op).pseudo;
}

} // namespace encore::ir
