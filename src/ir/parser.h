/**
 * @file
 * Parser for the textual Encore IR format emitted by the printer.
 *
 * The grammar (one construct per line, `#` comments allowed):
 *
 *   module "name"
 *   global @name <words>
 *   func @name(<nparams>) {
 *     local %name <words>
 *     points rK -> @obj, %obj, ...
 *     bb label:
 *       rD = <op> a[, b[, c]]
 *       rD = load [base + off]
 *       rD = lea [base + off]
 *       store [base + off], a
 *       [rD =] call @f(a, b, ...)
 *       br cond, label_true, label_false
 *       jmp label
 *       ret [a]
 *       region.enter N | ckpt.mem [..] | ckpt.reg r | restore N
 *   }
 *
 * where operands are `rN` (register), decimal/hex integers, or `f:X`
 * floating immediates, and address bases are `@global`, `%local`, or a
 * pointer register `rN`.
 *
 * Errors are reported as ParseError exceptions with line numbers.
 */
#ifndef ENCORE_IR_PARSER_H
#define ENCORE_IR_PARSER_H

#include <memory>
#include <stdexcept>
#include <string>

#include "ir/module.h"

namespace encore::ir {

/// Thrown on malformed input; message includes the 1-based line number.
class ParseError : public std::runtime_error
{
  public:
    explicit ParseError(const std::string &message)
        : std::runtime_error(message)
    {
    }
};

/// Parses a complete module from text. Call edges are resolved before
/// returning; a call to a function not defined in the text is an error.
std::unique_ptr<Module> parseModule(const std::string &text);

} // namespace encore::ir

#endif // ENCORE_IR_PARSER_H
