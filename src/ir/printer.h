/**
 * @file
 * Textual printer for the Encore IR. The output is accepted verbatim by
 * the Parser, giving a round-trippable on-disk format used by tests and
 * by anyone who wants to inspect instrumented code.
 */
#ifndef ENCORE_IR_PRINTER_H
#define ENCORE_IR_PRINTER_H

#include <iosfwd>
#include <string>

#include "ir/module.h"

namespace encore::ir {

/// Renders one instruction (no trailing newline).
std::string printInstruction(const Module &module, const Function &func,
                             const Instruction &inst);

/// Renders a whole function.
void printFunction(std::ostream &os, const Module &module,
                   const Function &func);

/// Renders a whole module.
void printModule(std::ostream &os, const Module &module);

/// Convenience: module to string.
std::string moduleToString(const Module &module);

} // namespace encore::ir

#endif // ENCORE_IR_PRINTER_H
