#include "ir/builder.h"

#include "support/diagnostics.h"

namespace encore::ir {

Function *
IRBuilder::beginFunction(const std::string &name, unsigned num_params,
                         const std::string &entry_name)
{
    func_ = module_->createFunction(name, num_params);
    for (unsigned i = 0; i < num_params; ++i)
        func_->noteReg(i);
    bb_ = func_->createBlock(entry_name);
    return func_;
}

BasicBlock *
IRBuilder::newBlock(const std::string &name)
{
    ENCORE_ASSERT(func_, "newBlock outside a function");
    return func_->createBlock(name);
}

void
IRBuilder::setInsertPoint(BasicBlock *bb)
{
    ENCORE_ASSERT(bb && bb->parent() == func_,
                  "insertion point must be in the current function");
    bb_ = bb;
}

void
IRBuilder::endFunction()
{
    ENCORE_ASSERT(func_, "endFunction outside a function");
    func_->recomputeCfg();
    func_ = nullptr;
    bb_ = nullptr;
}

ObjectId
IRBuilder::global(const std::string &name, std::uint32_t size_words)
{
    return module_->addGlobal(name, size_words);
}

ObjectId
IRBuilder::local(const std::string &name, std::uint32_t size_words)
{
    ENCORE_ASSERT(func_, "local object outside a function");
    return module_->addLocal(func_, name, size_words);
}

void
IRBuilder::noteOperand(const Operand &op)
{
    if (op.isReg())
        func_->noteReg(op.reg);
}

void
IRBuilder::noteAddr(const AddrExpr &addr)
{
    if (addr.isRegBase())
        func_->noteReg(addr.base_reg);
    noteOperand(addr.offset);
}

Instruction *
IRBuilder::push(Instruction inst)
{
    ENCORE_ASSERT(bb_, "no insertion point");
    ENCORE_ASSERT(bb_->terminator() == nullptr,
                  "appending past a terminator in block '" + bb_->name() +
                      "'");
    return bb_->append(std::move(inst));
}

RegId
IRBuilder::emit(Opcode op, Operand a, Operand b, Operand c)
{
    const RegId dest = func_->allocReg();
    emitTo(dest, op, a, b, c);
    return dest;
}

void
IRBuilder::emitTo(RegId dest, Opcode op, Operand a, Operand b, Operand c)
{
    ENCORE_ASSERT(opcodeHasDest(op), "emitTo on an opcode with no dest");
    Instruction inst(op);
    inst.setDest(dest);
    inst.setA(a);
    inst.setB(b);
    inst.setC(c);
    func_->noteReg(dest);
    noteOperand(a);
    noteOperand(b);
    noteOperand(c);
    push(std::move(inst));
}

RegId
IRBuilder::load(AddrExpr addr)
{
    const RegId dest = func_->allocReg();
    loadTo(dest, addr);
    return dest;
}

void
IRBuilder::loadTo(RegId dest, AddrExpr addr)
{
    Instruction inst(Opcode::Load);
    inst.setDest(dest);
    inst.setAddr(addr);
    func_->noteReg(dest);
    noteAddr(addr);
    push(std::move(inst));
}

void
IRBuilder::store(AddrExpr addr, Operand value)
{
    Instruction inst(Opcode::Store);
    inst.setAddr(addr);
    inst.setA(value);
    noteAddr(addr);
    noteOperand(value);
    push(std::move(inst));
}

RegId
IRBuilder::lea(AddrExpr addr)
{
    Instruction inst(Opcode::Lea);
    const RegId dest = func_->allocReg();
    inst.setDest(dest);
    inst.setAddr(addr);
    func_->noteReg(dest);
    noteAddr(addr);
    push(std::move(inst));
    return dest;
}

RegId
IRBuilder::call(const std::string &callee, std::vector<Operand> args)
{
    Instruction inst(Opcode::Call);
    const RegId dest = func_->allocReg();
    inst.setDest(dest);
    inst.setCalleeName(callee);
    for (const Operand &arg : args)
        noteOperand(arg);
    inst.setArgs(std::move(args));
    func_->noteReg(dest);
    push(std::move(inst));
    return dest;
}

void
IRBuilder::callVoid(const std::string &callee, std::vector<Operand> args)
{
    Instruction inst(Opcode::Call);
    inst.setCalleeName(callee);
    for (const Operand &arg : args)
        noteOperand(arg);
    inst.setArgs(std::move(args));
    push(std::move(inst));
}

void
IRBuilder::br(Operand cond, BasicBlock *if_true, BasicBlock *if_false)
{
    ENCORE_ASSERT(if_true && if_false, "br needs two targets");
    Instruction inst(Opcode::Br);
    inst.setA(cond);
    inst.setSucc0(if_true);
    inst.setSucc1(if_false);
    noteOperand(cond);
    push(std::move(inst));
}

void
IRBuilder::jmp(BasicBlock *target)
{
    ENCORE_ASSERT(target, "jmp needs a target");
    Instruction inst(Opcode::Jmp);
    inst.setSucc0(target);
    push(std::move(inst));
}

void
IRBuilder::ret(Operand value)
{
    Instruction inst(Opcode::Ret);
    inst.setA(value);
    noteOperand(value);
    push(std::move(inst));
}

} // namespace encore::ir
