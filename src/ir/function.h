/**
 * @file
 * Function: a CFG of basic blocks plus its local memory objects and
 * parameter metadata.
 */
#ifndef ENCORE_IR_FUNCTION_H
#define ENCORE_IR_FUNCTION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"

namespace encore::ir {

class Module;

class Function
{
  public:
    Function(Module *parent, std::string name, unsigned num_params)
        : parent_(parent), name_(std::move(name)), num_params_(num_params)
    {
    }

    Module *parent() const { return parent_; }
    const std::string &name() const { return name_; }

    /// Arguments arrive in registers r0..r{numParams()-1}.
    unsigned numParams() const { return num_params_; }

    // --- Blocks -----------------------------------------------------------
    /// Creates a block; the first block created is the entry block
    /// (until setEntry() overrides it).
    BasicBlock *createBlock(const std::string &name);

    BasicBlock *entry() const;

    /// Redirects the function entry to another block (used by the
    /// instrumenter when the original entry becomes a region header
    /// that needs a dedicated region-enter preheader). Block ids are
    /// unaffected.
    void setEntry(BasicBlock *bb);
    const std::vector<std::unique_ptr<BasicBlock>> &blocks() const
    {
        return blocks_;
    }
    std::size_t numBlocks() const { return blocks_.size(); }
    BasicBlock *blockById(BlockId id) const;
    BasicBlock *blockByName(const std::string &name) const;

    /// Recomputes predecessor lists from the terminators. Must be called
    /// after any CFG mutation (the builder and instrumenter do so).
    void recomputeCfg();

    // --- Registers ---------------------------------------------------------
    /// One past the highest register mentioned anywhere in the function;
    /// maintained by noteReg() from the builder/parser and used to size
    /// liveness bitvectors and interpreter register files.
    RegId numRegs() const { return num_regs_; }
    void noteReg(RegId reg);

    /// Allocates a fresh register (used by instrumentation when it needs
    /// a scratch register).
    RegId allocReg();

    // --- Local memory objects ----------------------------------------------
    /// Objects (stack arrays) owned by this function; ids index the
    /// module-wide object table.
    const std::vector<ObjectId> &localObjects() const { return locals_; }
    void noteLocalObject(ObjectId id) { locals_.push_back(id); }

    // --- Parameter points-to annotations -------------------------------------
    /// Declares that parameter register `param` may hold a pointer into
    /// any of `objects`. Un-annotated pointer parameters are treated as
    /// possibly aliasing all of memory by the static alias analysis —
    /// the same conservatism real compilers face at function boundaries.
    void setParamPointsTo(RegId param, std::vector<ObjectId> objects);
    const std::vector<ObjectId> *paramPointsTo(RegId param) const;

    /// Total static instruction count across all blocks.
    std::size_t instructionCount() const;

  private:
    Module *parent_;
    std::string name_;
    unsigned num_params_;
    std::size_t entry_index_ = 0;
    RegId num_regs_ = 0;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    std::map<std::string, BasicBlock *> block_names_;
    std::vector<ObjectId> locals_;
    std::map<RegId, std::vector<ObjectId>> param_points_to_;
};

} // namespace encore::ir

#endif // ENCORE_IR_FUNCTION_H
