#include "ir/parser.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "support/strings.h"

namespace encore::ir {

namespace {

/**
 * Line-oriented recursive-descent parser. State is the module under
 * construction plus the current function while inside `func { }`.
 */
class ParserImpl
{
  public:
    explicit ParserImpl(const std::string &text)
        : module_(std::make_unique<Module>())
    {
        std::istringstream stream(text);
        std::string raw;
        while (std::getline(stream, raw)) {
            ++line_no_;
            const std::size_t hash = raw.find('#');
            if (hash != std::string::npos)
                raw.erase(hash);
            const std::string line{trim(raw)};
            if (!line.empty())
                lines_.push_back({line_no_, line});
        }
    }

    std::unique_ptr<Module>
    run()
    {
        while (pos_ < lines_.size()) {
            const auto &[num, line] = lines_[pos_];
            if (startsWith(line, "module ")) {
                parseModuleHeader(line);
                ++pos_;
            } else if (startsWith(line, "global ")) {
                parseGlobal(line);
                ++pos_;
            } else if (startsWith(line, "func ")) {
                parseFunction();
            } else {
                error(num, "unexpected top-level line: '" + line + "'");
            }
        }
        resolveModuleCalls();
        return std::move(module_);
    }

  private:
    struct Line
    {
        int number;
        std::string text;
    };

    [[noreturn]] void
    error(int line, const std::string &message) const
    {
        throw ParseError("line " + std::to_string(line) + ": " + message);
    }

    [[noreturn]] void
    errorHere(const std::string &message) const
    {
        error(lines_[pos_].number, message);
    }

    void
    parseModuleHeader(const std::string &line)
    {
        const std::size_t open = line.find('"');
        const std::size_t close = line.rfind('"');
        if (open == std::string::npos || close <= open)
            errorHere("expected: module \"name\"");
        // Module name is informational only; reconstruct in place.
        *module_ = Module(line.substr(open + 1, close - open - 1));
    }

    void
    parseGlobal(const std::string &line)
    {
        const auto tokens = splitWhitespace(line);
        if (tokens.size() != 3 || tokens[1][0] != '@')
            errorHere("expected: global @name <words>");
        const auto size = parseInt(tokens[2]);
        if (!size || *size <= 0)
            errorHere("global size must be a positive integer");
        module_->addGlobal(tokens[1].substr(1),
                           static_cast<std::uint32_t>(*size));
    }

    void
    parseFunction()
    {
        const std::string header = lines_[pos_].text;
        // func @name(N) {
        std::size_t at = header.find('@');
        std::size_t open = header.find('(');
        std::size_t close = header.find(')');
        std::size_t brace = header.find('{');
        if (at == std::string::npos || open == std::string::npos ||
            close == std::string::npos || brace == std::string::npos ||
            !(at < open && open < close && close < brace)) {
            errorHere("expected: func @name(<nparams>) {");
        }
        const std::string name = header.substr(at + 1, open - at - 1);
        const auto nparams =
            parseInt(header.substr(open + 1, close - open - 1));
        if (!nparams || *nparams < 0)
            errorHere("bad parameter count");
        func_ = module_->createFunction(
            name, static_cast<unsigned>(*nparams));
        for (unsigned p = 0; p < func_->numParams(); ++p)
            func_->noteReg(p);
        ++pos_;

        // First pass over the body: find block labels and declarations,
        // creating blocks up-front so branch targets resolve forward.
        const std::size_t body_start = pos_;
        std::size_t body_end = pos_;
        int depth = 1;
        while (body_end < lines_.size()) {
            const std::string &text = lines_[body_end].text;
            if (text == "}") {
                --depth;
                if (depth == 0)
                    break;
            } else if (text.back() == '{') {
                ++depth;
            }
            ++body_end;
        }
        if (body_end >= lines_.size())
            error(lines_[body_start - 1].number,
                  "unterminated function body");

        for (std::size_t i = body_start; i < body_end; ++i) {
            const std::string &text = lines_[i].text;
            if (startsWith(text, "bb ")) {
                std::string label{trim(text.substr(3))};
                if (label.empty() || label.back() != ':')
                    error(lines_[i].number, "expected: bb label:");
                label.pop_back();
                func_->createBlock(std::string{trim(label)});
            }
        }
        if (func_->numBlocks() == 0)
            error(lines_[body_start - 1].number,
                  "function has no basic blocks");

        // Second pass: declarations and instructions.
        BasicBlock *current = nullptr;
        for (std::size_t i = body_start; i < body_end; ++i) {
            pos_ = i;
            const std::string &text = lines_[i].text;
            if (startsWith(text, "bb ")) {
                std::string label{trim(text.substr(3))};
                label.pop_back();
                current = func_->blockByName(std::string{trim(label)});
            } else if (startsWith(text, "local ")) {
                parseLocal(text);
            } else if (startsWith(text, "points ")) {
                parsePoints(text);
            } else {
                if (!current)
                    errorHere("instruction outside any basic block");
                parseInstruction(current, text);
            }
        }

        func_->recomputeCfg();
        func_ = nullptr;
        pos_ = body_end + 1;
    }

    void
    parseLocal(const std::string &line)
    {
        const auto tokens = splitWhitespace(line);
        if (tokens.size() != 3 || tokens[1][0] != '%')
            errorHere("expected: local %name <words>");
        const auto size = parseInt(tokens[2]);
        if (!size || *size <= 0)
            errorHere("local size must be a positive integer");
        module_->addLocal(func_, tokens[1].substr(1),
                          static_cast<std::uint32_t>(*size));
    }

    void
    parsePoints(const std::string &line)
    {
        // points rK -> @a, %b
        const std::size_t arrow = line.find("->");
        if (arrow == std::string::npos)
            errorHere("expected: points rK -> <objects>");
        const auto lhs = splitWhitespace(line.substr(7, arrow - 7));
        if (lhs.size() != 1)
            errorHere("expected a single parameter register");
        const RegId param = parseRegName(lhs[0]);
        std::vector<ObjectId> targets;
        for (const std::string &field : split(line.substr(arrow + 2), ',')) {
            const std::string ref{trim(field)};
            targets.push_back(resolveObjectRef(ref));
        }
        func_->setParamPointsTo(param, std::move(targets));
    }

    RegId
    parseRegName(std::string_view token) const
    {
        if (token.size() < 2 || token[0] != 'r')
            errorHere("expected a register, got '" + std::string(token) +
                      "'");
        const auto value = parseInt(token.substr(1));
        if (!value || *value < 0)
            errorHere("bad register '" + std::string(token) + "'");
        return static_cast<RegId>(*value);
    }

    ObjectId
    resolveObjectRef(std::string_view ref) const
    {
        if (ref.empty())
            errorHere("empty object reference");
        ObjectId id = kInvalidObject;
        if (ref[0] == '@') {
            id = module_->objectByName(std::string(ref.substr(1)));
        } else if (ref[0] == '%') {
            id = module_->objectByName(func_->name() + "." +
                                       std::string(ref.substr(1)));
        } else {
            errorHere("object reference must start with @ or %");
        }
        if (id == kInvalidObject)
            errorHere("unknown object '" + std::string(ref) + "'");
        return id;
    }

    Operand
    parseOperand(std::string_view token) const
    {
        const std::string text{trim(token)};
        if (text.empty())
            errorHere("empty operand");
        if (text[0] == 'r' && text.size() > 1 &&
            std::isdigit(static_cast<unsigned char>(text[1]))) {
            const RegId reg = parseRegName(text);
            func_->noteReg(reg);
            return Operand::makeReg(reg);
        }
        if (startsWith(text, "f:")) {
            char *end = nullptr;
            const double value = std::strtod(text.c_str() + 2, &end);
            if (end != text.c_str() + text.size())
                errorHere("bad floating immediate '" + text + "'");
            return Operand::makeFpImm(value);
        }
        const auto value = parseInt(text);
        if (!value)
            errorHere("bad operand '" + text + "'");
        return Operand::makeImm(*value);
    }

    AddrExpr
    parseAddr(std::string_view token) const
    {
        std::string text{trim(token)};
        if (text.size() < 2 || text.front() != '[' || text.back() != ']')
            errorHere("expected an address expression [..], got '" + text +
                      "'");
        text = text.substr(1, text.size() - 2);

        std::string base_text;
        Operand offset = Operand::makeImm(0);
        const std::size_t plus = text.find('+');
        if (plus == std::string::npos) {
            base_text = std::string{trim(text)};
        } else {
            base_text = std::string{trim(text.substr(0, plus))};
            offset = parseOperand(text.substr(plus + 1));
        }

        if (base_text.empty())
            errorHere("address expression has no base");
        if (base_text[0] == '@' || base_text[0] == '%')
            return AddrExpr::makeObject(resolveObjectRef(base_text), offset);
        const RegId base = parseRegName(base_text);
        func_->noteReg(base);
        return AddrExpr::makeReg(base, offset);
    }

    /// Splits "a, b, c" honoring no nesting (operands contain no commas).
    std::vector<std::string>
    commaFields(std::string_view text) const
    {
        std::vector<std::string> fields;
        for (const std::string &f : split(text, ','))
            fields.push_back(std::string{trim(f)});
        return fields;
    }

    void
    parseCall(BasicBlock *bb, RegId dest, std::string_view rhs)
    {
        // call @f(a, b, ...)
        const std::size_t at = rhs.find('@');
        const std::size_t open = rhs.find('(');
        const std::size_t close = rhs.rfind(')');
        if (at == std::string_view::npos || open == std::string_view::npos ||
            close == std::string_view::npos || !(at < open && open < close))
            errorHere("expected: call @name(args)");
        Instruction inst(Opcode::Call);
        inst.setCalleeName(
            std::string{trim(rhs.substr(at + 1, open - at - 1))});
        std::vector<Operand> args;
        const std::string_view arg_text = rhs.substr(open + 1,
                                                     close - open - 1);
        if (!trim(arg_text).empty()) {
            for (const std::string &field : commaFields(arg_text))
                args.push_back(parseOperand(field));
        }
        inst.setArgs(std::move(args));
        if (dest != kInvalidReg) {
            inst.setDest(dest);
            func_->noteReg(dest);
        }
        bb->append(std::move(inst));
    }

    void
    parseInstruction(BasicBlock *bb, const std::string &line)
    {
        const std::size_t eq = line.find(" = ");
        if (eq != std::string::npos) {
            const RegId dest =
                parseRegName(std::string{trim(line.substr(0, eq))});
            func_->noteReg(dest);
            const std::string rhs{trim(line.substr(eq + 3))};
            const auto tokens = splitWhitespace(rhs);
            if (tokens.empty())
                errorHere("empty instruction right-hand side");

            if (tokens[0] == "load" || tokens[0] == "lea") {
                Instruction inst(tokens[0] == "load" ? Opcode::Load
                                                     : Opcode::Lea);
                inst.setDest(dest);
                inst.setAddr(parseAddr(rhs.substr(tokens[0].size())));
                bb->append(std::move(inst));
                return;
            }
            if (tokens[0] == "call") {
                parseCall(bb, dest, rhs);
                return;
            }

            const Opcode op = opcodeFromName(tokens[0]);
            if (op == Opcode::NumOpcodes || !opcodeHasDest(op))
                errorHere("unknown opcode '" + tokens[0] + "'");
            Instruction inst(op);
            inst.setDest(dest);
            const auto fields =
                commaFields(rhs.substr(tokens[0].size()));
            const int expected = opcodeNumOperands(op);
            if (static_cast<int>(fields.size()) != expected)
                errorHere("opcode '" + tokens[0] + "' expects " +
                          std::to_string(expected) + " operands");
            if (expected >= 1)
                inst.setA(parseOperand(fields[0]));
            if (expected >= 2)
                inst.setB(parseOperand(fields[1]));
            if (expected >= 3)
                inst.setC(parseOperand(fields[2]));
            bb->append(std::move(inst));
            return;
        }

        const auto tokens = splitWhitespace(line);
        const std::string &head = tokens[0];

        if (head == "store") {
            // store [addr], value
            const std::size_t close = line.find(']');
            if (close == std::string::npos)
                errorHere("store needs an address expression");
            Instruction inst(Opcode::Store);
            inst.setAddr(parseAddr(line.substr(5, close - 5 + 1)));
            const std::size_t comma = line.find(',', close);
            if (comma == std::string::npos)
                errorHere("store needs a value operand");
            inst.setA(parseOperand(line.substr(comma + 1)));
            bb->append(std::move(inst));
            return;
        }
        if (head == "call") {
            parseCall(bb, kInvalidReg, line);
            return;
        }
        if (head == "br") {
            const auto fields = commaFields(line.substr(2));
            if (fields.size() != 3)
                errorHere("expected: br cond, label, label");
            Instruction inst(Opcode::Br);
            inst.setA(parseOperand(fields[0]));
            inst.setSucc0(lookupBlock(fields[1]));
            inst.setSucc1(lookupBlock(fields[2]));
            bb->append(std::move(inst));
            return;
        }
        if (head == "jmp") {
            if (tokens.size() != 2)
                errorHere("expected: jmp label");
            Instruction inst(Opcode::Jmp);
            inst.setSucc0(lookupBlock(tokens[1]));
            bb->append(std::move(inst));
            return;
        }
        if (head == "ret") {
            Instruction inst(Opcode::Ret);
            if (tokens.size() == 2)
                inst.setA(parseOperand(tokens[1]));
            else if (tokens.size() > 2)
                errorHere("expected: ret [operand]");
            bb->append(std::move(inst));
            return;
        }
        if (head == "region.enter" || head == "restore") {
            if (tokens.size() != 2)
                errorHere("expected: " + head + " <region-id>");
            const auto id = parseInt(tokens[1]);
            if (!id || *id < 0)
                errorHere("bad region id");
            Instruction inst(head == "restore" ? Opcode::Restore
                                               : Opcode::RegionEnter);
            inst.setRegionId(static_cast<RegionId>(*id));
            bb->append(std::move(inst));
            return;
        }
        if (head == "ckpt.mem") {
            Instruction inst(Opcode::CkptMem);
            inst.setAddr(parseAddr(line.substr(8)));
            bb->append(std::move(inst));
            return;
        }
        if (head == "ckpt.reg") {
            if (tokens.size() != 2)
                errorHere("expected: ckpt.reg rN");
            Instruction inst(Opcode::CkptReg);
            inst.setA(parseOperand(tokens[1]));
            bb->append(std::move(inst));
            return;
        }
        errorHere("unrecognized instruction '" + line + "'");
    }

    BasicBlock *
    lookupBlock(const std::string &label) const
    {
        BasicBlock *bb = func_->blockByName(std::string{trim(label)});
        if (!bb)
            errorHere("unknown block label '" + label + "'");
        return bb;
    }

    void
    resolveModuleCalls()
    {
        for (auto &f : module_->functions()) {
            for (auto &bb : f->blocks()) {
                for (auto &inst : bb->instructions()) {
                    if (inst.opcode() != Opcode::Call)
                        continue;
                    Function *callee =
                        module_->functionByName(inst.calleeName());
                    if (!callee)
                        throw ParseError("call to unknown function '@" +
                                         inst.calleeName() + "'");
                    inst.setCallee(callee);
                }
            }
        }
    }

    std::unique_ptr<Module> module_;
    Function *func_ = nullptr;
    std::vector<Line> lines_;
    std::size_t pos_ = 0;
    int line_no_ = 0;
};

} // namespace

std::unique_ptr<Module>
parseModule(const std::string &text)
{
    return ParserImpl(text).run();
}

} // namespace encore::ir
