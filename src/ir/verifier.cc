#include "ir/verifier.h"

#include <sstream>

#include "support/diagnostics.h"

namespace encore::ir {

namespace {

class Verifier
{
  public:
    explicit Verifier(const Module &module) : module_(module) {}

    std::vector<std::string>
    run()
    {
        for (const auto &func : module_.functions())
            checkFunction(*func);
        return std::move(problems_);
    }

  private:
    template <typename... Parts>
    void
    problem(const Function &func, const BasicBlock *bb,
            const Parts &...parts)
    {
        std::ostringstream os;
        os << "in @" << func.name();
        if (bb)
            os << " bb " << bb->name();
        os << ": ";
        (os << ... << parts);
        problems_.push_back(os.str());
    }

    void
    checkOperand(const Function &func, const BasicBlock &bb,
                 const Operand &op)
    {
        if (op.isReg() && op.reg >= func.numRegs())
            problem(func, &bb, "register r", op.reg,
                    " exceeds the function's register count");
    }

    void
    checkAddr(const Function &func, const BasicBlock &bb,
              const AddrExpr &addr)
    {
        switch (addr.base_kind) {
          case AddrExpr::BaseKind::None:
            problem(func, &bb, "memory access with no address base");
            return;
          case AddrExpr::BaseKind::Object:
            if (addr.object >= module_.objects().size()) {
                problem(func, &bb, "address references unknown object id ",
                        addr.object);
                return;
            }
            if (addr.offset.isImm()) {
                const MemObject &obj = module_.object(addr.object);
                if (addr.offset.imm < 0 ||
                    addr.offset.imm >= static_cast<std::int64_t>(obj.size)) {
                    problem(func, &bb, "constant offset ", addr.offset.imm,
                            " out of bounds for object '", obj.name,
                            "' of size ", obj.size);
                }
            }
            break;
          case AddrExpr::BaseKind::Reg:
            if (addr.base_reg >= func.numRegs())
                problem(func, &bb, "address base register r", addr.base_reg,
                        " exceeds the function's register count");
            break;
        }
        checkOperand(func, bb, addr.offset);
    }

    void
    checkFunction(const Function &func)
    {
        if (func.numBlocks() == 0) {
            problem(func, nullptr, "function has no blocks");
            return;
        }

        for (const auto &bb : func.blocks()) {
            if (bb->empty()) {
                problem(func, bb.get(), "empty basic block");
                continue;
            }

            std::size_t index = 0;
            const std::size_t last = bb->size() - 1;
            for (const auto &inst : bb->instructions()) {
                const bool is_last = index == last;
                if (inst.isTerminator() && !is_last)
                    problem(func, bb.get(),
                            "terminator before the end of the block");
                if (is_last && !inst.isTerminator())
                    problem(func, bb.get(), "block lacks a terminator");

                if (inst.hasDest() && inst.dest() >= func.numRegs())
                    problem(func, bb.get(), "destination register r",
                            inst.dest(),
                            " exceeds the function's register count");

                if (opcodeHasDest(inst.opcode()) && !inst.hasDest())
                    problem(func, bb.get(), "'",
                            opcodeName(inst.opcode()),
                            "' requires a destination register");

                if (opcodeHasAddress(inst.opcode()))
                    checkAddr(func, *bb, inst.addr());

                for (const Operand &op : inst.usedOperands())
                    checkOperand(func, *bb, op);

                switch (inst.opcode()) {
                  case Opcode::Br:
                    if (!inst.succ0() || !inst.succ1())
                        problem(func, bb.get(), "br with missing target");
                    else if (inst.succ0()->parent() != &func ||
                             inst.succ1()->parent() != &func)
                        problem(func, bb.get(),
                                "br target in another function");
                    break;
                  case Opcode::Jmp:
                    if (!inst.succ0())
                        problem(func, bb.get(), "jmp with missing target");
                    else if (inst.succ0()->parent() != &func)
                        problem(func, bb.get(),
                                "jmp target in another function");
                    break;
                  case Opcode::Call: {
                    for (const Operand &arg : inst.args())
                        checkOperand(func, *bb, arg);
                    const Function *callee = inst.callee();
                    if (!callee) {
                        problem(func, bb.get(), "unresolved call to '@",
                                inst.calleeName(), "'");
                    } else if (inst.args().size() != callee->numParams()) {
                        problem(func, bb.get(), "call to '@",
                                inst.calleeName(), "' passes ",
                                inst.args().size(), " args but callee takes ",
                                callee->numParams());
                    }
                    break;
                  }
                  default:
                    break;
                }
                ++index;
            }
        }
    }

    const Module &module_;
    std::vector<std::string> problems_;
};

} // namespace

std::vector<std::string>
verifyModule(const Module &module)
{
    return Verifier(module).run();
}

void
verifyOrDie(const Module &module)
{
    const auto problems = verifyModule(module);
    if (!problems.empty())
        panicf("module '", module.name(), "' failed verification: ",
               problems.front(), " (and ", problems.size() - 1, " more)");
}

} // namespace encore::ir
