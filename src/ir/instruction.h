/**
 * @file
 * Instruction representation for the Encore IR.
 *
 * Instructions are stored by value in an intrusive std::list per basic
 * block, which keeps their addresses stable across the instrumentation
 * pass — the idempotence analysis records the offending stores of a
 * region (the CP set of §3.2) as Instruction pointers and later inserts
 * checkpoints immediately before them.
 */
#ifndef ENCORE_IR_INSTRUCTION_H
#define ENCORE_IR_INSTRUCTION_H

#include <cstdint>
#include <vector>

#include "ir/opcode.h"
#include "ir/operand.h"

namespace encore::ir {

class BasicBlock;
class Function;

/// Identifier of an Encore recovery region, carried by the runtime
/// pseudo-ops so the interpreter can associate checkpoints with the
/// correct region instance.
using RegionId = std::uint32_t;

constexpr RegionId kInvalidRegion = ~0u;

class Instruction
{
  public:
    explicit Instruction(Opcode op) : opcode_(op) {}

    Opcode opcode() const { return opcode_; }

    // --- Destination -----------------------------------------------------
    bool hasDest() const { return dest_ != kInvalidReg; }
    RegId dest() const { return dest_; }
    void setDest(RegId reg) { dest_ = reg; }

    // --- Value operands --------------------------------------------------
    const Operand &a() const { return ops_[0]; }
    const Operand &b() const { return ops_[1]; }
    const Operand &c() const { return ops_[2]; }
    void setA(Operand op) { ops_[0] = op; }
    void setB(Operand op) { ops_[1] = op; }
    void setC(Operand op) { ops_[2] = op; }

    /// All value operands in use (excluding call arguments).
    std::vector<Operand> usedOperands() const;

    // --- Memory ----------------------------------------------------------
    const AddrExpr &addr() const { return addr_; }
    void setAddr(AddrExpr addr) { addr_ = addr; }
    bool accessesMemory() const
    {
        return opcodeReadsMemory(opcode_) || opcodeWritesMemory(opcode_);
    }

    // --- Calls -----------------------------------------------------------
    const std::string &calleeName() const { return callee_name_; }
    void setCalleeName(std::string name) { callee_name_ = std::move(name); }
    Function *callee() const { return callee_; }
    void setCallee(Function *f) { callee_ = f; }
    const std::vector<Operand> &args() const { return args_; }
    void setArgs(std::vector<Operand> args) { args_ = std::move(args); }

    // --- Control flow ----------------------------------------------------
    BasicBlock *succ0() const { return succ_[0]; }
    BasicBlock *succ1() const { return succ_[1]; }
    void setSucc0(BasicBlock *bb) { succ_[0] = bb; }
    void setSucc1(BasicBlock *bb) { succ_[1] = bb; }
    bool isTerminator() const { return opcodeIsTerminator(opcode_); }

    // --- Encore runtime pseudo-ops ----------------------------------------
    RegionId regionId() const { return region_id_; }
    void setRegionId(RegionId id) { region_id_ = id; }
    bool isPseudo() const { return opcodeIsPseudo(opcode_); }

    /// True for instrumentation instructions (pseudo-ops) that should be
    /// charged as runtime overhead rather than program work.
    bool isOverhead() const { return isPseudo(); }

  private:
    Opcode opcode_;
    RegId dest_ = kInvalidReg;
    Operand ops_[3];
    AddrExpr addr_;
    std::string callee_name_;
    Function *callee_ = nullptr;
    std::vector<Operand> args_;
    BasicBlock *succ_[2] = {nullptr, nullptr};
    RegionId region_id_ = kInvalidRegion;
};

} // namespace encore::ir

#endif // ENCORE_IR_INSTRUCTION_H
