#include "ir/function.h"

#include "support/diagnostics.h"

namespace encore::ir {

BasicBlock *
Function::createBlock(const std::string &name)
{
    ENCORE_ASSERT(block_names_.find(name) == block_names_.end(),
                  "duplicate block name '" + name + "' in function '" +
                      name_ + "'");
    const BlockId id = static_cast<BlockId>(blocks_.size());
    blocks_.push_back(std::make_unique<BasicBlock>(this, id, name));
    BasicBlock *bb = blocks_.back().get();
    block_names_[name] = bb;
    return bb;
}

BasicBlock *
Function::entry() const
{
    ENCORE_ASSERT(entry_index_ < blocks_.size(),
                  "function '" + name_ + "' has no entry block");
    return blocks_[entry_index_].get();
}

void
Function::setEntry(BasicBlock *bb)
{
    ENCORE_ASSERT(bb && bb->parent() == this,
                  "entry block must belong to this function");
    entry_index_ = bb->id();
}

BasicBlock *
Function::blockById(BlockId id) const
{
    ENCORE_ASSERT(id < blocks_.size(), "block id out of range");
    return blocks_[id].get();
}

BasicBlock *
Function::blockByName(const std::string &name) const
{
    auto it = block_names_.find(name);
    return it == block_names_.end() ? nullptr : it->second;
}

void
Function::recomputeCfg()
{
    for (auto &bb : blocks_)
        bb->clearPreds();
    for (auto &bb : blocks_) {
        for (BasicBlock *succ : bb->successors()) {
            ENCORE_ASSERT(succ != nullptr,
                          "terminator with unresolved successor in '" +
                              bb->name() + "'");
            succ->addPred(bb.get());
        }
    }
}

void
Function::noteReg(RegId reg)
{
    if (reg != kInvalidReg && reg + 1 > num_regs_)
        num_regs_ = reg + 1;
}

RegId
Function::allocReg()
{
    return num_regs_++;
}

void
Function::setParamPointsTo(RegId param, std::vector<ObjectId> objects)
{
    ENCORE_ASSERT(param < num_params_,
                  "points-to annotation on a non-parameter register");
    param_points_to_[param] = std::move(objects);
}

const std::vector<ObjectId> *
Function::paramPointsTo(RegId param) const
{
    auto it = param_points_to_.find(param);
    return it == param_points_to_.end() ? nullptr : &it->second;
}

std::size_t
Function::instructionCount() const
{
    std::size_t count = 0;
    for (const auto &bb : blocks_)
        count += bb->size();
    return count;
}

} // namespace encore::ir
