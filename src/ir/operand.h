/**
 * @file
 * Operands, virtual registers, memory objects, pointer values, and
 * symbolic address expressions for the Encore IR.
 *
 * Memory is organized as a set of named MemObjects (globals or
 * function-local "stack" arrays), each an array of 64-bit words. An
 * address expression is `base + offset` where the base is either a
 * MemObject named statically, or a register holding a pointer value
 * produced by `lea` (or derived from one by integer arithmetic). This
 * split is what gives the static alias analysis something to reason
 * about — exactly the situation the paper's conservative "static alias
 * analysis" faces — while remaining fully executable.
 */
#ifndef ENCORE_IR_OPERAND_H
#define ENCORE_IR_OPERAND_H

#include <cstdint>
#include <string>

namespace encore::ir {

/// Virtual register index. Registers are function-local; arguments
/// arrive in r0..r{argc-1}.
using RegId = std::uint32_t;

constexpr RegId kInvalidReg = ~0u;

/// Identifier of a memory object; unique module-wide.
using ObjectId = std::uint32_t;

constexpr ObjectId kInvalidObject = ~0u;

/**
 * A named array of 64-bit words. Globals are owned by the Module and
 * live for the whole execution; locals are owned by a Function and are
 * (re)allocated per activation.
 */
struct MemObject
{
    ObjectId id = kInvalidObject;
    std::string name;
    std::uint32_t size = 0; ///< Capacity in 64-bit words.
    bool is_global = false;
};

/**
 * Runtime pointer encoding: object id in the high 32 bits (biased by 1
 * so that 0 is never a valid pointer) and word offset in the low 32.
 */
struct Pointer
{
    static std::uint64_t
    encode(ObjectId object, std::uint32_t offset)
    {
        return (static_cast<std::uint64_t>(object) + 1) << 32 | offset;
    }

    static bool
    isPointer(std::uint64_t value)
    {
        return (value >> 32) != 0;
    }

    static ObjectId
    object(std::uint64_t value)
    {
        return static_cast<ObjectId>((value >> 32) - 1);
    }

    static std::uint32_t
    offset(std::uint64_t value)
    {
        return static_cast<std::uint32_t>(value);
    }
};

/**
 * An instruction operand: a register, an immediate, or absent.
 */
struct Operand
{
    enum class Kind : std::uint8_t { None, Reg, Imm };

    Kind kind = Kind::None;
    RegId reg = kInvalidReg;
    std::int64_t imm = 0;

    Operand() = default;

    static Operand
    makeReg(RegId r)
    {
        Operand op;
        op.kind = Kind::Reg;
        op.reg = r;
        return op;
    }

    static Operand
    makeImm(std::int64_t value)
    {
        Operand op;
        op.kind = Kind::Imm;
        op.imm = value;
        return op;
    }

    /// Immediate holding the bit pattern of a double (for FP opcodes).
    static Operand makeFpImm(double value);

    static Operand
    none()
    {
        return Operand();
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }

    bool
    operator==(const Operand &other) const
    {
        if (kind != other.kind)
            return false;
        switch (kind) {
          case Kind::None:
            return true;
          case Kind::Reg:
            return reg == other.reg;
          case Kind::Imm:
            return imm == other.imm;
        }
        return false;
    }
};

/**
 * Symbolic address expression `base + offset` (word granularity).
 *
 * The base is either a statically named MemObject or a register that
 * holds a pointer at runtime. The offset is a register or immediate.
 */
struct AddrExpr
{
    enum class BaseKind : std::uint8_t { None, Object, Reg };

    BaseKind base_kind = BaseKind::None;
    ObjectId object = kInvalidObject;
    RegId base_reg = kInvalidReg;
    Operand offset = Operand::makeImm(0);

    AddrExpr() = default;

    static AddrExpr
    makeObject(ObjectId obj, Operand off = Operand::makeImm(0))
    {
        AddrExpr a;
        a.base_kind = BaseKind::Object;
        a.object = obj;
        a.offset = off;
        return a;
    }

    static AddrExpr
    makeReg(RegId base, Operand off = Operand::makeImm(0))
    {
        AddrExpr a;
        a.base_kind = BaseKind::Reg;
        a.base_reg = base;
        a.offset = off;
        return a;
    }

    bool isObjectBase() const { return base_kind == BaseKind::Object; }
    bool isRegBase() const { return base_kind == BaseKind::Reg; }
    bool isNone() const { return base_kind == BaseKind::None; }

    /// True when both the base object and the offset are compile-time
    /// constants — the easy case for alias disambiguation.
    bool
    isStaticallyExact() const
    {
        return isObjectBase() && offset.isImm();
    }
};

/// Reinterprets a register value as a double (FP opcodes).
double bitsToDouble(std::uint64_t bits);

/// Reinterprets a double as a register value.
std::uint64_t doubleToBits(double value);

} // namespace encore::ir

#endif // ENCORE_IR_OPERAND_H
