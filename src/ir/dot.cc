#include "ir/dot.h"

#include <ostream>
#include <sstream>

namespace encore::ir {

namespace {

/// Escapes a string for a double-quoted DOT attribute.
std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
writeDot(std::ostream &os, const Function &func,
         const std::map<BlockId, DotBlockStyle> &styles)
{
    os << "digraph \"" << escape(func.name()) << "\" {\n";
    os << "  node [shape=box, fontname=\"monospace\"];\n";
    os << "  label=\"@" << escape(func.name()) << "\";\n";

    for (const auto &bb : func.blocks()) {
        os << "  bb" << bb->id() << " [label=\"" << escape(bb->name())
           << "\\n" << bb->size() << " instrs";
        auto style = styles.find(bb->id());
        if (style != styles.end() && !style->second.note.empty())
            os << "\\n" << escape(style->second.note);
        os << "\"";
        if (style != styles.end() && !style->second.fill.empty()) {
            os << ", style=filled, fillcolor=\""
               << escape(style->second.fill) << "\"";
        }
        if (bb.get() == func.entry())
            os << ", peripheries=2";
        os << "];\n";
    }

    for (const auto &bb : func.blocks()) {
        const Instruction *term = bb->terminator();
        if (!term)
            continue;
        switch (term->opcode()) {
          case Opcode::Br:
            os << "  bb" << bb->id() << " -> bb" << term->succ0()->id()
               << " [label=\"T\"];\n";
            os << "  bb" << bb->id() << " -> bb" << term->succ1()->id()
               << " [label=\"F\"];\n";
            break;
          case Opcode::Jmp:
            os << "  bb" << bb->id() << " -> bb" << term->succ0()->id()
               << ";\n";
            break;
          default:
            break;
        }
    }

    os << "}\n";
}

std::string
functionToDot(const Function &func,
              const std::map<BlockId, DotBlockStyle> &styles)
{
    std::ostringstream os;
    writeDot(os, func, styles);
    return os.str();
}

} // namespace encore::ir
