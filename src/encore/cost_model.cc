#include "encore/cost_model.h"

#include <unordered_map>

#include "support/diagnostics.h"

namespace encore {

std::vector<ir::RegId>
regionRegisterCheckpoints(const Region &region,
                          const analysis::Liveness &liveness)
{
    ENCORE_ASSERT(region.func, "region without a function");
    const analysis::RegSet &live_in = liveness.liveIn(region.header);

    analysis::RegSet written(live_in.size());
    for (const ir::BlockId block : region.blocks) {
        const analysis::RegSet &defs = liveness.defs(block);
        for (std::size_t r = 0; r < defs.size(); ++r) {
            if (defs.test(static_cast<ir::RegId>(r)))
                written.set(static_cast<ir::RegId>(r));
        }
    }

    std::vector<ir::RegId> regs;
    for (std::size_t r = 0; r < live_in.size(); ++r) {
        const auto reg = static_cast<ir::RegId>(r);
        if (live_in.test(reg) && written.test(reg))
            regs.push_back(reg);
    }
    return regs;
}

double
regionOutsideEntries(const interp::ProfileData &profile,
                     const Region &region)
{
    const ir::Function &func = *region.func;
    std::uint64_t entries =
        profile.externalEntries(func, region.header);
    const ir::BasicBlock *header = func.blockById(region.header);
    for (const ir::BasicBlock *pred : header->predecessors()) {
        if (!region.contains(pred->id()))
            entries += profile.edgeCount(func, pred->id(), region.header);
    }
    return static_cast<double>(entries);
}

RegionCost
RegionCostFromProfile(const interp::ProfileData &profile,
                      const Region &region,
                      const IdempotenceResult &analysis,
                      const analysis::Liveness &liveness)
{
    RegionCost cost;
    const ir::Function &func = *region.func;

    cost.entries = regionOutsideEntries(profile, region);

    // Baseline dynamic instructions attributed to the region. A single
    // walk also records each member instruction's block count so the
    // checkpoint weighting below is a lookup instead of a rescan of the
    // region per checkpoint site.
    std::unordered_map<const ir::Instruction *, double> count_of_block;
    double dyn = 0.0;
    for (const ir::BlockId block : region.blocks) {
        const double block_count =
            static_cast<double>(profile.blockCount(func, block));
        std::size_t real = 0;
        for (const auto &inst : func.blockById(block)->instructions()) {
            if (!inst.isPseudo())
                ++real;
            count_of_block.emplace(&inst, block_count);
        }
        dyn += block_count * static_cast<double>(real);
    }
    cost.dyn_instrs = dyn;
    cost.hot_path_length = cost.entries > 0.0 ? dyn / cost.entries : 0.0;

    // Instrumentation work. The header executes region.enter plus one
    // ckpt.reg per checkpointed register on every entry; each CP store
    // (and each exact call-mod) adds a ckpt.mem weighted by its block's
    // execution count.
    const auto reg_ckpts = regionRegisterCheckpoints(region, liveness);
    cost.static_reg_ckpts = reg_ckpts.size();

    double added = cost.entries * (1.0 + static_cast<double>(
                                             reg_ckpts.size()));
    double mem_ckpt_dyn = 0.0;
    for (const ir::Instruction *store : analysis.checkpoint_stores) {
        auto it = count_of_block.find(store);
        if (it != count_of_block.end())
            mem_ckpt_dyn += it->second;
        ++cost.static_mem_ckpts;
    }
    for (const auto &call_ckpt : analysis.checkpoint_calls) {
        auto it = count_of_block.find(call_ckpt.call);
        if (it != count_of_block.end()) {
            mem_ckpt_dyn +=
                it->second * static_cast<double>(call_ckpt.mods.size());
        }
        cost.static_mem_ckpts += call_ckpt.mods.size();
    }
    added += mem_ckpt_dyn;

    cost.overhead_instrs = added;
    cost.ckpt_per_entry =
        cost.entries > 0.0 ? added / cost.entries
                           : 1.0 + static_cast<double>(reg_ckpts.size()) +
                                 static_cast<double>(
                                     analysis.staticCheckpointCount());

    // Storage model: per entry, every register checkpoint costs 8 B
    // and every dynamic memory checkpoint 16 B (address + datum).
    const double mem_per_entry =
        cost.entries > 0.0 ? mem_ckpt_dyn / cost.entries
                           : static_cast<double>(cost.static_mem_ckpts);
    cost.storage_mem_bytes = 16.0 * mem_per_entry;
    cost.storage_reg_bytes = 8.0 * static_cast<double>(reg_ckpts.size());
    cost.storage_bytes = cost.storage_mem_bytes + cost.storage_reg_bytes;
    cost.static_storage_mem_bytes =
        16.0 * static_cast<double>(cost.static_mem_ckpts);
    cost.static_storage_reg_bytes =
        8.0 * static_cast<double>(reg_ckpts.size());

    return cost;
}

RegionCost
CostModel::evaluate(const Region &region, const IdempotenceResult &analysis,
                    const analysis::Liveness &liveness) const
{
    return RegionCostFromProfile(profile_, region, analysis, liveness);
}

} // namespace encore
