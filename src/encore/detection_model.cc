#include "encore/detection_model.h"

#include <algorithm>

namespace encore {

double
alphaUniform(double n, double dmax)
{
    if (n <= 0.0)
        return 0.0;
    if (dmax <= 0.0)
        return 1.0;
    if (n >= dmax)
        return 1.0 - dmax / (2.0 * n);
    return n / (2.0 * dmax);
}

double
alphaNumeric(double n, double dmax,
             const std::function<double(double)> &latency_density,
             const std::function<double(double)> &site_density, int steps)
{
    if (n <= 0.0)
        return 0.0;
    if (dmax <= 0.0)
        return 1.0;

    const double ds = n / steps;
    const double dl = dmax / steps;

    double site_mass = 0.0;
    double latency_mass = 0.0;
    for (int i = 0; i < steps; ++i) {
        site_mass += site_density((i + 0.5) * ds) * ds;
        latency_mass += latency_density((i + 0.5) * dl) * dl;
    }
    if (site_mass <= 0.0 || latency_mass <= 0.0)
        return 0.0;

    double total = 0.0;
    for (int i = 0; i < steps; ++i) {
        const double s = (i + 0.5) * ds;
        const double limit = std::min(n - s, dmax);
        if (limit <= 0.0)
            continue;
        double inner = 0.0;
        for (int j = 0; j < steps; ++j) {
            const double l = (j + 0.5) * dl;
            if (l < limit)
                inner += latency_density(l) * dl;
        }
        total += site_density(s) * (inner / latency_mass) * ds;
    }
    return total / site_mass;
}

double
alphaNumericUniform(double n, double dmax, int steps)
{
    auto uniform = [](double) { return 1.0; };
    return alphaNumeric(n, dmax, uniform, uniform, steps);
}

} // namespace encore
