#include "encore/region_formation.h"

#include <algorithm>

#include "analysis/intervals.h"
#include "support/diagnostics.h"

namespace encore {

namespace {

CandidateRegion
makeCandidate(const ir::Function &func, ir::BlockId header,
              std::vector<ir::BlockId> blocks, unsigned level,
              RegionEvaluator &evaluator)
{
    CandidateRegion candidate;
    candidate.region.func = &func;
    candidate.region.header = header;
    std::sort(blocks.begin(), blocks.end());
    candidate.region.blocks = std::move(blocks);
    candidate.level = level;
    evaluator.evaluate(candidate);
    return candidate;
}

} // namespace

std::vector<CandidateRegion>
formRegions(const ir::Function &func, const FunctionContext &ctx,
            const interp::ProfileData &profile, RegionEvaluator &evaluator,
            const FormationOptions &options)
{
    const analysis::IntervalHierarchy &hierarchy = ctx.intervals;

    const double func_dyn = std::max<double>(
        1.0, static_cast<double>(profile.functionDynInstrs(func)));

    // decisions[i] — the current region set representing interval i of
    // the level being processed.
    std::vector<std::vector<CandidateRegion>> decisions;
    for (const analysis::IntervalRegion &interval : hierarchy.level(0)) {
        std::vector<ir::BlockId> blocks;
        for (const analysis::NodeId b : interval.blocks)
            blocks.push_back(static_cast<ir::BlockId>(b));
        std::vector<CandidateRegion> single;
        single.push_back(makeCandidate(
            func, static_cast<ir::BlockId>(interval.header),
            std::move(blocks), 0, evaluator));
        decisions.push_back(std::move(single));
    }

    for (std::size_t level = 1;
         options.merge && level < hierarchy.numLevels(); ++level) {
        std::vector<std::vector<CandidateRegion>> next;
        for (const analysis::IntervalRegion &interval :
             hierarchy.level(level)) {
            // Gather the constituents' current decisions.
            std::vector<CandidateRegion> constituents;
            for (const std::size_t child : interval.children) {
                for (CandidateRegion &region : decisions[child])
                    constituents.push_back(std::move(region));
            }

            if (constituents.size() <= 1) {
                next.push_back(std::move(constituents));
                continue;
            }

            std::vector<ir::BlockId> blocks;
            for (const analysis::NodeId b : interval.blocks)
                blocks.push_back(static_cast<ir::BlockId>(b));
            CandidateRegion merged = makeCandidate(
                func, static_cast<ir::BlockId>(interval.header),
                std::move(blocks), static_cast<unsigned>(level),
                evaluator);

            bool accept = merged.analysis.cls != RegionClass::Unknown &&
                          merged.analysis.checkpointable &&
                          merged.cost.storage_bytes <=
                              options.max_storage_bytes &&
                          merged.cost.hot_path_length <=
                              options.max_hot_path;
            if (accept) {
                double max_cov = 0.0;
                double constituent_overhead = 0.0;
                for (const CandidateRegion &region : constituents) {
                    max_cov = std::max(max_cov, region.cost.coverage());
                    constituent_overhead += region.cost.overhead_instrs;
                }
                const double d_coverage =
                    max_cov > 0.0 ? merged.cost.coverage() / max_cov
                                  : 1.0;
                const double d_cost =
                    (merged.cost.overhead_instrs - constituent_overhead) /
                    func_dyn;
                if (d_cost > 0.0) {
                    accept = d_coverage / d_cost > options.eta;
                } else {
                    // Merging is free or cheaper (one region.enter
                    // instead of several): accept unless coverage would
                    // somehow shrink.
                    accept = d_coverage >= 1.0;
                }
            }

            if (accept) {
                std::vector<CandidateRegion> adopted;
                adopted.push_back(std::move(merged));
                next.push_back(std::move(adopted));
            } else {
                next.push_back(std::move(constituents));
            }
        }
        decisions = std::move(next);
    }

    std::vector<CandidateRegion> result;
    for (auto &group : decisions) {
        for (CandidateRegion &region : group)
            result.push_back(std::move(region));
    }
    return result;
}

std::vector<CandidateRegion>
formRegions(const ir::Function &func, IdempotenceAnalysis &idem,
            const CostModel &cost_model,
            const analysis::Liveness &liveness,
            const FormationOptions &options)
{
    DirectRegionEvaluator evaluator(idem, cost_model, liveness);
    return formRegions(func, idem.context(func), cost_model.profile(),
                       evaluator, options);
}

} // namespace encore
