#include "encore/call_summary.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace encore {

namespace {

/// True when a location can only reference the given function's own
/// local objects — invisible to callers.
bool
purelyLocalTo(const analysis::MemLoc &loc, const ir::Module &module,
              const ir::Function &func)
{
    if (loc.unknown_base)
        return false;
    const auto &locals = func.localObjects();
    for (const ir::ObjectId base : loc.bases) {
        if (module.object(base).is_global)
            return false;
        if (std::find(locals.begin(), locals.end(), base) == locals.end())
            return false;
    }
    return true;
}

} // namespace

CallSummaries::CallSummaries(const ir::Module &module,
                             const analysis::AliasAnalysis &aa,
                             std::set<std::string> opaque_functions)
    : module_(module), aa_(aa), opaque_(std::move(opaque_functions))
{
    for (const auto &func : module.functions())
        compute(*func);
}

const FunctionSummary &
CallSummaries::summary(const ir::Function &func) const
{
    auto it = summaries_.find(&func);
    ENCORE_ASSERT(it != summaries_.end(), "summary was never computed");
    return it->second;
}

const FunctionSummary &
CallSummaries::compute(const ir::Function &func)
{
    auto it = summaries_.find(&func);
    if (it != summaries_.end())
        return it->second;

    FunctionSummary result;

    if (isOpaque(func)) {
        result.analyzable = false;
        result.reason = "opaque (library) function";
        return summaries_.emplace(&func, std::move(result)).first->second;
    }
    if (in_progress_.count(&func)) {
        result.analyzable = false;
        result.reason = "recursive call cycle";
        return summaries_.emplace(&func, std::move(result)).first->second;
    }
    in_progress_.insert(&func);

    auto give_up = [&](const std::string &reason) -> const FunctionSummary & {
        in_progress_.erase(&func);
        FunctionSummary bad;
        bad.analyzable = false;
        bad.reason = reason;
        auto [pos, _] = summaries_.insert_or_assign(&func, std::move(bad));
        return pos->second;
    };

    for (const auto &bb : func.blocks()) {
        for (const auto &inst : bb->instructions()) {
            switch (inst.opcode()) {
              case ir::Opcode::Store: {
                const analysis::MemLoc loc = aa_.classify(func, inst);
                if (purelyLocalTo(loc, module_, func))
                    break;
                if (loc.unknown_base) {
                    return give_up(
                        "store through an unresolved pointer in @" +
                        func.name());
                }
                result.mod.add(loc, &inst);
                break;
              }
              case ir::Opcode::Load: {
                const analysis::MemLoc loc = aa_.classify(func, inst);
                if (purelyLocalTo(loc, module_, func))
                    break;
                // Flow-insensitive: treat every non-local load as
                // potentially exposed (conservative superset of the
                // true exposed set).
                result.ref.add(loc, &inst);
                break;
              }
              case ir::Opcode::Call: {
                const ir::Function *callee = inst.callee();
                if (!callee)
                    return give_up("unresolved call in @" + func.name());
                const FunctionSummary &inner = compute(*callee);
                if (!inner.analyzable) {
                    return give_up("calls @" + callee->name() + ": " +
                                   inner.reason);
                }
                result.mod.unionWith(inner.mod);
                result.ref.unionWith(inner.ref);
                break;
              }
              default:
                break;
            }
        }
    }

    in_progress_.erase(&func);
    auto [pos, _] = summaries_.insert_or_assign(&func, std::move(result));
    return pos->second;
}

} // namespace encore
