/**
 * @file
 * Analytical recoverability model (paper §4.2.1).
 *
 * A fault striking at instruction s of a region whose hot path is n
 * instructions long is recoverable iff it is detected before control
 * leaves the region: s + l < n, with detection latency l. For uniform
 * fault sites and uniform latencies in [0, Dmax] the scaling factor
 * α_ri = Pr(s + l < n) has the closed form of Equation 7:
 *
 *        α = 1 − Dmax/(2n)   when n >= Dmax
 *        α = n/(2 Dmax)      when n <  Dmax
 *
 * A generic numeric integrator over arbitrary latency/site densities is
 * provided both to cross-check the closed form in tests and to support
 * non-uniform detection models.
 */
#ifndef ENCORE_ENCORE_DETECTION_MODEL_H
#define ENCORE_ENCORE_DETECTION_MODEL_H

#include <functional>

namespace encore {

/// Equation 7 closed form. n <= 0 yields 0; dmax <= 0 yields 1 (instant
/// detection always recovers).
double alphaUniform(double n, double dmax);

/**
 * Numeric evaluation of Equation 6:
 *   α = ∫₀ⁿ g(s) ∫₀^{min(n-s, Dmax)} f(l) dl ds
 * where f is the latency density on [0, dmax] and g the fault-site
 * density on [0, n]. Densities need not be normalized; the result is
 * normalized by the densities' masses.
 */
double alphaNumeric(double n, double dmax,
                    const std::function<double(double)> &latency_density,
                    const std::function<double(double)> &site_density,
                    int steps = 400);

/// alphaNumeric with uniform densities (sanity twin of alphaUniform).
double alphaNumericUniform(double n, double dmax, int steps = 400);

} // namespace encore

#endif // ENCORE_ENCORE_DETECTION_MODEL_H
