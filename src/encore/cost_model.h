/**
 * @file
 * Profile-driven cost/coverage model for region selection and merging
 * (paper §3.4.2).
 *
 * Coverage surrogate: the hot-path length through the region — here the
 * expected number of dynamic instructions executed per region entry,
 * derived from profiled block counts. Cost: the expected checkpointing
 * instructions per entry relative to that hot-path length. A region is
 * instrumented when Coverage/Cost > γ; adjacent regions are merged when
 * ΔCoverage/ΔCost > η with ΔCoverage from Equation 5.
 */
#ifndef ENCORE_ENCORE_COST_MODEL_H
#define ENCORE_ENCORE_COST_MODEL_H

#include "analysis/liveness.h"
#include "encore/region.h"
#include "interp/profile.h"

namespace encore {

/// Registers that must be checkpointed at region entry: live-in to the
/// header and overwritten somewhere inside the region (§3.2).
std::vector<ir::RegId> regionRegisterCheckpoints(
    const Region &region, const analysis::Liveness &liveness);

/// Dynamic entries into the region *from outside* — header executions
/// reached via an edge whose source is not a member block, plus
/// external entries (function entry). Loop back edges do not count: a
/// region instance spans all iterations of its loops.
double regionOutsideEntries(const interp::ProfileData &profile,
                            const Region &region);

struct RegionCost
{
    /// Dynamic region instances: entries from outside (profile).
    double entries = 0.0;
    /// Expected dynamic (non-pseudo) instructions per instance — the
    /// hot-path length n used for coverage and for Equation 7's α.
    double hot_path_length = 0.0;
    /// Expected instrumentation instructions per entry: the header's
    /// region.enter, register checkpoints, and memory checkpoints
    /// weighted by their blocks' execution frequency.
    double ckpt_per_entry = 0.0;
    /// Total added dynamic instructions over the profiled run.
    double overhead_instrs = 0.0;
    /// Total baseline dynamic instructions attributed to the region.
    double dyn_instrs = 0.0;
    /// Static counts for the storage model (Figure 7b).
    std::size_t static_mem_ckpts = 0;
    std::size_t static_reg_ckpts = 0;

    double
    coverage() const
    {
        return hot_path_length;
    }

    /// Checkpoint density along the hot path (the paper's cost
    /// estimate); 0-entry regions cost nothing at runtime.
    double
    cost() const
    {
        return hot_path_length > 0.0 ? ckpt_per_entry / hot_path_length
                                     : 0.0;
    }

    /// Expected *dynamic* checkpoint-log size per instance in bytes:
    /// memory undo records are 16 B (address + datum), register
    /// records 8 B. Grows with loop trip counts.
    double storage_bytes = 0.0;
    double storage_mem_bytes = 0.0;
    double storage_reg_bytes = 0.0;
    /// Static reserved-slot size (the paper's Figure 7b metric): one
    /// 16 B slot per checkpoint site plus 8 B per register.
    double static_storage_mem_bytes = 0.0;
    double static_storage_reg_bytes = 0.0;
};

class CostModel
{
  public:
    explicit CostModel(const interp::ProfileData &profile)
        : profile_(profile)
    {
    }

    /// Evaluates the cost of instrumenting `region` given its analysis
    /// result. `liveness` must belong to the region's function.
    RegionCost evaluate(const Region &region,
                        const IdempotenceResult &analysis,
                        const analysis::Liveness &liveness) const;

    const interp::ProfileData &profile() const { return profile_; }

  private:
    const interp::ProfileData &profile_;
};

} // namespace encore

#endif // ENCORE_ENCORE_COST_MODEL_H
