#include "encore/analysis_base.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "interp/interpreter.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"
#include "support/thread_pool.h"

namespace encore {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

AnalysisBase::AnalysisBase(ir::Module &module,
                           const std::vector<RunSpec> &profile_runs,
                           std::uint64_t profile_max_instrs,
                           std::size_t jobs)
    : module_(module), pool_(std::make_unique<ThreadPool>(jobs))
{
    module_.resolveCalls();
    ir::verifyOrDie(module_);

    // The analysis assumes a pristine module.
    for (const auto &func : module_.functions()) {
        for (const auto &bb : func->blocks()) {
            for (const auto &inst : bb->instructions()) {
                ENCORE_ASSERT(!inst.isPseudo(),
                              "module is already instrumented");
            }
        }
    }

    // Profiling runs (Stage 1 of the pipeline).
    double t0 = nowSeconds();
    {
        interp::Interpreter interp(module_);
        interp::Profiler profiler(profile_);
        interp::AddressProfiler addr_profiler(addr_profile_);
        interp.addObserver(&profiler);
        interp.addObserver(&addr_profiler);
        interp.setMaxInstructions(profile_max_instrs);
        for (const RunSpec &spec : profile_runs) {
            const interp::RunResult result = interp.run(spec.entry,
                                                        spec.args);
            if (!result.ok()) {
                fatalf("profiling run of @", spec.entry,
                       " failed: ", result.error);
            }
        }
    }
    timings_.profile += nowSeconds() - t0;

    // Shared structures: both alias analyses (the optimistic one is a
    // cheap view over the static one + the address profile) and the
    // per-function CFG contexts, built in parallel and then published
    // into the shared cache.
    t0 = nowSeconds();
    static_aa_ = std::make_unique<analysis::StaticAliasAnalysis>(module_);
    optimistic_aa_ =
        std::make_unique<analysis::ProfileGuidedAliasAnalysis>(
            *static_aa_, addr_profile_);

    const auto &funcs = module_.functions();
    std::vector<std::unique_ptr<FunctionContext>> built(funcs.size());
    pool_->parallelFor(funcs.size(),
                       [&](std::uint64_t i, std::size_t) {
                           built[i] = std::make_unique<FunctionContext>(
                               *funcs[i]);
                       });
    for (std::size_t i = 0; i < funcs.size(); ++i)
        contexts_.put(*funcs[i], std::move(built[i]));
    timings_.structures += nowSeconds() - t0;
}

AnalysisBase::~AnalysisBase() = default;

const analysis::AliasAnalysis &
AnalysisBase::alias(EncoreConfig::AliasMode mode) const
{
    if (mode == EncoreConfig::AliasMode::Optimistic)
        return *optimistic_aa_;
    return *static_aa_;
}

std::size_t
AnalysisCache::RegionKeyHash::operator()(const RegionKey &key) const
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a
    const auto mix = [&h](std::uint64_t value) {
        h ^= value;
        h *= 1099511628211ull;
    };
    mix(reinterpret_cast<std::uintptr_t>(key.func));
    mix(static_cast<std::uint64_t>(key.header));
    for (const ir::BlockId block : key.blocks)
        mix(static_cast<std::uint64_t>(block));
    return static_cast<std::size_t>(h);
}

AnalysisCache::Stats
AnalysisCache::stats() const
{
    Stats stats;
    stats.region_evals = region_evals_.load();
    stats.region_hits = region_hits_.load();
    std::lock_guard<std::mutex> lock(mutex_);
    stats.variants = variants_.size();
    return stats;
}

AnalysisCache::Variant &
AnalysisCache::variant(const EncoreConfig &config)
{
    const int mode = static_cast<int>(config.alias_mode);
    std::string opaque;
    for (const std::string &name : config.opaque_functions) {
        opaque += name;
        opaque += '\0';
    }
    const double pmin = config.prune ? config.pmin : -1.0;

    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<CallSummaries> &summaries =
        summaries_[SummariesKey(mode, opaque)];
    if (!summaries) {
        summaries = std::make_unique<CallSummaries>(
            base_.module(), base_.alias(config.alias_mode),
            config.opaque_functions);
    }

    std::unique_ptr<Variant> &variant =
        variants_[VariantKey(mode, opaque, config.use_call_summaries,
                             pmin)];
    if (!variant) {
        variant = std::make_unique<Variant>();
        IdempotenceAnalysis::Options options;
        options.pmin = pmin;
        options.use_call_summaries = config.use_call_summaries;
        variant->idem = std::make_unique<IdempotenceAnalysis>(
            base_.module(), base_.alias(config.alias_mode), *summaries,
            &base_.profile(), options, &base_.contexts());
    }
    return *variant;
}

namespace {

/// Direct evaluation serialized by a private mutex (the analysis
/// instance is not internally synchronized; formation may run
/// per-function in parallel).
class LockedDirectEvaluator : public RegionEvaluator
{
  public:
    LockedDirectEvaluator(IdempotenceAnalysis &idem,
                          const CostModel &cost_model,
                          FunctionContextCache &contexts)
        : idem_(idem), cost_model_(cost_model), contexts_(contexts)
    {
    }

    void
    evaluate(CandidateRegion &candidate) override
    {
        const analysis::Liveness &liveness =
            contexts_.get(*candidate.region.func).liveness;
        std::lock_guard<std::mutex> lock(mutex_);
        candidate.analysis = idem_.analyzeRegion(candidate.region);
        candidate.cost = cost_model_.evaluate(candidate.region,
                                              candidate.analysis,
                                              liveness);
    }

  private:
    IdempotenceAnalysis &idem_;
    const CostModel &cost_model_;
    FunctionContextCache &contexts_;
    std::mutex mutex_;
};

/// Memoizing evaluator over a cache variant. Hit or miss, the values
/// are pure functions of the key, so results are order- and
/// thread-count-independent.
class CachedRegionEvaluator : public RegionEvaluator
{
  public:
    CachedRegionEvaluator(AnalysisCache &cache,
                          AnalysisCache::Variant &variant,
                          const CostModel &cost_model,
                          FunctionContextCache &contexts)
        : cache_(cache), variant_(variant), cost_model_(cost_model),
          contexts_(contexts)
    {
    }

    void
    evaluate(CandidateRegion &candidate) override
    {
        AnalysisCache::RegionKey key;
        key.func = candidate.region.func;
        key.header = candidate.region.header;
        key.blocks = candidate.region.blocks;

        const analysis::Liveness &liveness =
            contexts_.get(*candidate.region.func).liveness;

        std::lock_guard<std::mutex> lock(variant_.mutex);
        auto it = variant_.regions.find(key);
        if (it != variant_.regions.end()) {
            candidate.analysis = it->second.analysis;
            candidate.cost = it->second.cost;
            cache_.region_hits_.fetch_add(1,
                                          std::memory_order_relaxed);
            return;
        }
        candidate.analysis =
            variant_.idem->analyzeRegion(candidate.region);
        candidate.cost = cost_model_.evaluate(candidate.region,
                                              candidate.analysis,
                                              liveness);
        variant_.regions.emplace(
            std::move(key),
            AnalysisCache::CachedRegion{candidate.analysis,
                                        candidate.cost});
        cache_.region_evals_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    AnalysisCache &cache_;
    AnalysisCache::Variant &variant_;
    const CostModel &cost_model_;
    FunctionContextCache &contexts_;
};

/// Accumulates the seconds spent inside the wrapped evaluator
/// (thread-safe), so formation and dataflow can be timed separately.
class TimedEvaluator : public RegionEvaluator
{
  public:
    TimedEvaluator(RegionEvaluator &inner, double &seconds)
        : inner_(inner), seconds_(seconds)
    {
    }

    void
    evaluate(CandidateRegion &candidate) override
    {
        const double t0 = nowSeconds();
        inner_.evaluate(candidate);
        const double elapsed = nowSeconds() - t0;
        std::lock_guard<std::mutex> lock(mutex_);
        seconds_ += elapsed;
    }

  private:
    RegionEvaluator &inner_;
    double &seconds_;
    std::mutex mutex_;
};

} // namespace

ConfigAnalysis
analyzeConfig(const AnalysisBase &base, const EncoreConfig &config,
              AnalysisCache *cache, AnalysisPhaseTimings *timings)
{
    // Config-dependent analyses: from the cache when available,
    // otherwise built locally for this call.
    std::unique_ptr<CallSummaries> local_summaries;
    std::unique_ptr<IdempotenceAnalysis> local_idem;
    IdempotenceAnalysis *idem = nullptr;
    AnalysisCache::Variant *variant = nullptr;
    if (cache) {
        variant = &cache->variant(config);
        idem = variant->idem.get();
    } else {
        const analysis::AliasAnalysis &aa = base.alias(config.alias_mode);
        local_summaries = std::make_unique<CallSummaries>(
            base.module(), aa, config.opaque_functions);
        IdempotenceAnalysis::Options options;
        options.pmin = config.prune ? config.pmin : -1.0;
        options.use_call_summaries = config.use_call_summaries;
        local_idem = std::make_unique<IdempotenceAnalysis>(
            base.module(), aa, *local_summaries, &base.profile(),
            options, &base.contexts());
        idem = local_idem.get();
    }

    CostModel cost_model(base.profile());

    FormationOptions formation;
    formation.eta = config.eta;
    formation.merge = config.merge_regions;
    formation.max_storage_bytes = config.max_storage_bytes;
    formation.max_hot_path = config.max_region_length;

    std::unique_ptr<RegionEvaluator> evaluator;
    if (variant) {
        evaluator = std::make_unique<CachedRegionEvaluator>(
            *cache, *variant, cost_model, base.contexts());
    } else {
        evaluator = std::make_unique<LockedDirectEvaluator>(
            *idem, cost_model, base.contexts());
    }
    double dataflow_seconds = 0.0;
    TimedEvaluator timed(*evaluator, dataflow_seconds);

    // Region formation, one function at a time in parallel. Results
    // land in module function order regardless of completion order.
    const double form_t0 = nowSeconds();
    const auto &funcs = base.module().functions();
    std::vector<std::vector<CandidateRegion>> formed(funcs.size());
    base.pool().parallelFor(
        funcs.size(), [&](std::uint64_t i, std::size_t) {
            const ir::Function &func = *funcs[i];
            formed[i] = formRegions(func, base.contexts().get(func),
                                    base.profile(), timed, formation);
        });

    ConfigAnalysis out;
    for (std::vector<CandidateRegion> &candidates : formed) {
        for (CandidateRegion &candidate : candidates) {
            InstrumentedRegion region;
            region.candidate = std::move(candidate);
            out.regions.push_back(std::move(region));
        }
    }
    if (timings) {
        timings->dataflow += dataflow_seconds;
        timings->formation +=
            std::max(0.0, nowSeconds() - form_t0 - dataflow_seconds);
    }

    const double select_t0 = nowSeconds();
    std::vector<InstrumentedRegion> &regions_ = out.regions;

    // Selection: γ filter.
    for (InstrumentedRegion &region : regions_) {
        const CandidateRegion &cand = region.candidate;
        if (cand.analysis.cls == RegionClass::Unknown) {
            region.rejection_reason = cand.analysis.unknown_reason;
            continue;
        }
        if (!cand.analysis.checkpointable) {
            region.rejection_reason = "offender not checkpointable";
            continue;
        }
        if (cand.cost.entries <= 0.0) {
            // Never profiled: protect only when free (idempotent).
            if (cand.analysis.isIdempotent()) {
                region.selected = true;
            } else {
                region.rejection_reason = "cold region needing checkpoints";
            }
            continue;
        }
        if (cand.cost.storage_bytes > config.max_storage_bytes) {
            region.rejection_reason = "exceeds checkpoint storage budget";
            continue;
        }
        const double n = cand.cost.coverage();
        const double c = std::max(cand.cost.ckpt_per_entry, 1e-9);
        if (n * n / c > config.gamma) {
            region.selected = true;
        } else {
            region.rejection_reason = "coverage/cost below gamma";
        }
    }

    // Budget auto-tune: drop the least efficient regions until the
    // projected overhead fits.
    const double baseline =
        static_cast<double>(base.profile().totalDynInstrs());
    if (config.auto_tune && baseline > 0.0) {
        auto projected = [&]() {
            // Clearing enters are only emitted in functions with at
            // least one protected region (see instrumentFunction).
            std::set<const ir::Function *> protected_funcs;
            for (const InstrumentedRegion &region : regions_) {
                if (region.selected)
                    protected_funcs.insert(region.candidate.region.func);
            }
            double total = 0.0;
            for (const InstrumentedRegion &region : regions_) {
                if (region.selected) {
                    total += region.candidate.cost.overhead_instrs;
                } else if (protected_funcs.count(
                               region.candidate.region.func)) {
                    total += region.candidate.cost.entries; // clear enter
                }
            }
            return total;
        };
        while (projected() > config.overhead_budget * baseline) {
            InstrumentedRegion *worst = nullptr;
            double worst_ratio = -1.0;
            for (InstrumentedRegion &region : regions_) {
                if (!region.selected)
                    continue;
                const RegionCost &cost = region.candidate.cost;
                const double saved =
                    cost.overhead_instrs - cost.entries;
                if (saved <= 0.0)
                    continue; // dropping gains nothing
                const double ratio =
                    saved / std::max(cost.dyn_instrs, 1.0);
                if (ratio > worst_ratio) {
                    worst_ratio = ratio;
                    worst = &region;
                }
            }
            if (!worst)
                break;
            worst->selected = false;
            worst->rejection_reason = "dropped to meet overhead budget";
        }
    }

    // Region ids: selection order, independent of instrumentation.
    ir::RegionId next_id = 0;
    for (InstrumentedRegion &region : regions_) {
        if (region.selected)
            region.id = next_id++;
    }

    // Report.
    EncoreReport &report = out.report;
    report.baseline_dyn_instrs = baseline;
    std::set<const ir::Function *> protected_funcs;
    for (const InstrumentedRegion &region : regions_) {
        if (region.selected)
            protected_funcs.insert(region.candidate.region.func);
    }
    for (const InstrumentedRegion &region : regions_) {
        const CandidateRegion &cand = region.candidate;
        RegionReport entry;
        entry.id = region.id;
        entry.function = cand.region.func->name();
        entry.header = cand.region.header;
        entry.num_blocks = cand.region.blocks.size();
        entry.cls = cand.analysis.cls;
        entry.unknown_reason = cand.analysis.unknown_reason;
        entry.selected = region.selected;
        entry.rejection_reason = region.rejection_reason;
        entry.entries = cand.cost.entries;
        entry.hot_path_length = cand.cost.hot_path_length;
        entry.dyn_instrs = cand.cost.dyn_instrs;
        entry.overhead_instrs =
            region.selected ? cand.cost.overhead_instrs
            : protected_funcs.count(cand.region.func)
                ? cand.cost.entries
                : 0.0;
        entry.static_mem_ckpts = cand.cost.static_mem_ckpts;
        entry.static_reg_ckpts = cand.cost.static_reg_ckpts;
        entry.storage_bytes = cand.cost.storage_bytes;
        entry.storage_mem_bytes = cand.cost.storage_mem_bytes;
        entry.storage_reg_bytes = cand.cost.storage_reg_bytes;
        entry.static_storage_mem_bytes =
            cand.cost.static_storage_mem_bytes;
        entry.static_storage_reg_bytes =
            cand.cost.static_storage_reg_bytes;
        report.projected_overhead_instrs += entry.overhead_instrs;
        report.regions.push_back(std::move(entry));
    }
    if (timings)
        timings->select_merge += nowSeconds() - select_t0;

    return out;
}

ConfigAnalysis
runConfig(const AnalysisBase &base, const EncoreConfig &config,
          AnalysisCache *cache, AnalysisPhaseTimings *timings)
{
    ConfigAnalysis out = analyzeConfig(base, config, cache, timings);

    const double t0 = nowSeconds();
    for (const auto &func : base.module().functions()) {
        std::vector<InstrumentedRegion *> mine;
        for (InstrumentedRegion &region : out.regions) {
            if (region.candidate.region.func == func.get())
                mine.push_back(&region);
        }
        instrumentFunction(*func, mine,
                           base.contexts().get(*func).liveness);
    }
    ir::verifyOrDie(base.module());
    if (timings)
        timings->instrument += nowSeconds() - t0;

    return out;
}

} // namespace encore
