/**
 * @file
 * Function mod/ref summaries for calls inside candidate regions.
 *
 * The paper leaves regions containing calls without alias information
 * as "Unknown" (§5.1) — mostly system and library calls. We reproduce
 * that behaviour for *opaque* functions (the workloads mark their
 * library-like helpers opaque), and go one step further for internal
 * functions: a bottom-up mod/ref summary lets a call participate in
 * the RS/GA/EA equations as if it were a block of stores (its mod set)
 * and exposed loads (its ref set). Stores and loads to the callee's own
 * stack locals are invisible to the caller (fresh per activation) and
 * are excluded.
 *
 * The summary becomes unanalyzable — and any region containing such a
 * call Unknown — when the callee (or anything it transitively calls)
 * is opaque, recursive, or writes through a pointer the static alias
 * analysis cannot resolve.
 */
#ifndef ENCORE_ENCORE_CALL_SUMMARY_H
#define ENCORE_ENCORE_CALL_SUMMARY_H

#include <map>
#include <set>
#include <string>

#include "analysis/alias.h"

namespace encore {

struct FunctionSummary
{
    bool analyzable = true;
    std::string reason;
    /// Locations the function may write (callee locals excluded).
    analysis::LocationSet mod;
    /// Locations the function may read while they still hold their
    /// pre-call values (exposed loads; conservative superset).
    analysis::LocationSet ref;

    bool
    hasSideEffects() const
    {
        return !mod.empty();
    }
};

class CallSummaries
{
  public:
    /// Functions named in `opaque` (or flagged by the workload via the
    /// opaque registry) are treated as unanalyzable library calls.
    CallSummaries(const ir::Module &module,
                  const analysis::AliasAnalysis &aa,
                  std::set<std::string> opaque_functions = {});

    const FunctionSummary &summary(const ir::Function &func) const;

    bool
    isOpaque(const ir::Function &func) const
    {
        return opaque_.count(func.name()) > 0;
    }

  private:
    const FunctionSummary &compute(const ir::Function &func);

    const ir::Module &module_;
    const analysis::AliasAnalysis &aa_;
    std::set<std::string> opaque_;
    std::map<const ir::Function *, FunctionSummary> summaries_;
    std::set<const ir::Function *> in_progress_;
};

} // namespace encore

#endif // ENCORE_ENCORE_CALL_SUMMARY_H
