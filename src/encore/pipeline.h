/**
 * @file
 * The end-to-end Encore pipeline (Figure 3 of the paper):
 *
 *   profile → partition into SEME regions → idempotence analysis →
 *   region selection & merging heuristics → instrumentation.
 *
 * The pipeline owns nothing but configuration; it mutates the module in
 * place (adding the recovery pseudo-ops) and returns a report carrying
 * every per-region statistic that the evaluation figures need.
 */
#ifndef ENCORE_ENCORE_PIPELINE_H
#define ENCORE_ENCORE_PIPELINE_H

#include <memory>
#include <set>

#include "encore/instrumenter.h"

namespace encore {

struct EncoreConfig
{
    /// Pruning threshold Pmin; `prune == false` is the paper's ∅
    /// column. Pmin = 0.0 prunes only never-executed blocks.
    bool prune = true;
    double pmin = 0.0;

    /// Region selection: instrument iff Coverage/Cost > gamma, i.e.
    /// hot_path² / ckpt_per_entry > gamma.
    double gamma = 50.0;

    /// Region merging threshold (ΔCoverage/ΔCost > eta).
    double eta = 100.0;
    bool merge_regions = true;

    /// Upper bound on the merged hot-path length (expected dynamic
    /// instructions per region instance). Matches Table 1's
    /// 100-1000-instruction interval target; merging stops before
    /// regions degenerate into whole-program checkpoints. Level-0
    /// intervals larger than this (big monolithic loops) are kept
    /// as-is.
    double max_region_length = 1000.0;

    /// Checkpoint-storage guard per region instance, in bytes. The
    /// paper's reserved stack area holds the *static* checkpoint slots
    /// (~10-100 B, Table 1 / Figure 7b); the undo log additionally
    /// grows with the dynamic checkpoint count of an instance. Regions
    /// whose expected log exceeds this are not instrumented and merges
    /// that would blow it are rejected — primarily a guard against
    /// pathological megaregions; cost-based selection (gamma + the
    /// overhead budget) does the real pruning.
    double max_storage_bytes = 16384.0;

    /// Target runtime overhead; when auto_tune is set, the costliest
    /// regions are dropped until the projected overhead fits (the
    /// paper's "γ and η empirically derived per application to target
    /// ~20%").
    double overhead_budget = 0.20;
    bool auto_tune = true;

    /// Use mod/ref summaries for internal calls; disabled, any call
    /// with side effects leaves the region Unknown (paper behaviour).
    bool use_call_summaries = true;

    /// Optimistic (profile-guided) alias analysis instead of the
    /// conservative static one (Figure 7a's second bar).
    enum class AliasMode { Static, Optimistic };
    AliasMode alias_mode = AliasMode::Static;

    /// Functions to treat as opaque library calls (regions containing
    /// calls to them become Unknown).
    std::set<std::string> opaque_functions;

    /// Budget for each profiling run.
    std::uint64_t profile_max_instrs = 200'000'000;
};

/// A named entry point + arguments, used for profiling runs.
struct RunSpec
{
    std::string entry;
    std::vector<std::uint64_t> args;
};

/// Per-region entry of the report.
struct RegionReport
{
    ir::RegionId id = ir::kInvalidRegion;
    std::string function;
    ir::BlockId header = 0;
    std::size_t num_blocks = 0;
    RegionClass cls = RegionClass::Unknown;
    std::string unknown_reason;
    bool selected = false;
    std::string rejection_reason;
    double entries = 0.0;
    double hot_path_length = 0.0;
    double dyn_instrs = 0.0;
    double overhead_instrs = 0.0;
    std::size_t static_mem_ckpts = 0;
    std::size_t static_reg_ckpts = 0;
    double storage_bytes = 0.0;
    double storage_mem_bytes = 0.0;
    double storage_reg_bytes = 0.0;
    double static_storage_mem_bytes = 0.0;
    double static_storage_reg_bytes = 0.0;
};

struct EncoreReport
{
    std::vector<RegionReport> regions;

    /// Baseline dynamic instructions over the profiling runs.
    double baseline_dyn_instrs = 0.0;
    /// Projected added dynamic instructions of the selected regions.
    double projected_overhead_instrs = 0.0;

    double
    projectedOverheadFraction() const
    {
        return baseline_dyn_instrs > 0.0
                   ? projected_overhead_instrs / baseline_dyn_instrs
                   : 0.0;
    }

    // --- Figure 5: static region classification -----------------------
    std::size_t countByClass(RegionClass cls) const;

    // --- Figure 6: dynamic execution breakdown -------------------------
    /// Fractions of baseline dynamic instructions spent in regions that
    /// are (a) selected & idempotent, (b) selected & checkpointed,
    /// (c) unprotected.
    double dynFractionIdempotent() const;
    double dynFractionCheckpointed() const;
    double dynFractionUnprotected() const;

    // --- Figure 7b: storage -----------------------------------------------
    /// Entry-weighted average *static* checkpoint slot size per region
    /// in bytes (the paper's metric: reserved stack space for the
    /// selective checkpoint sites).
    double avgStorageBytes() const;
    double avgStorageMemBytes() const;
    double avgStorageRegBytes() const;
    /// Entry-weighted average *dynamic* undo-log size per region
    /// instance (extension: actual log growth including loop trips).
    double avgDynStorageBytes() const;

    /// Mean dynamic region length (instructions per region entry) over
    /// selected regions — the "interval length" row of Table 1.
    double meanSelectedRegionLength() const;

    /// Class of a region id (for fault-outcome attribution).
    RegionClass classOf(ir::RegionId id) const;

    /// Canonical byte serialization of every field (doubles rendered
    /// with full precision) — two reports are bit-identical iff their
    /// serializations compare equal. Used by the determinism tests.
    std::string serialized() const;
};

class AnalysisBase;

/**
 * Single-config convenience wrapper over the shared-analysis API: one
 * AnalysisBase, one runConfig (see encore/analysis_base.h). Sweeps
 * over many configs should use that API directly so the base and the
 * per-region dataflow results are shared across config points.
 */
class EncorePipeline
{
  public:
    EncorePipeline(ir::Module &module, EncoreConfig config);
    ~EncorePipeline();

    /// Profiles the module on the given runs, then analyzes, selects
    /// and instruments. May be called once per module.
    EncoreReport run(const std::vector<RunSpec> &profile_runs);

    /// Finalized regions (valid after run()).
    const std::vector<InstrumentedRegion> &instrumentedRegions() const
    {
        return regions_;
    }

    /// Profiling counts (valid after run()).
    const interp::ProfileData &profileData() const;

  private:
    ir::Module &module_;
    EncoreConfig config_;
    std::unique_ptr<AnalysisBase> base_;
    std::vector<InstrumentedRegion> regions_;
    bool ran_ = false;
};

} // namespace encore

#endif // ENCORE_ENCORE_PIPELINE_H
