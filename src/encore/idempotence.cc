#include "encore/idempotence.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace encore {

using analysis::EntryId;
using analysis::GuardId;
using analysis::IdSet;
using analysis::kInvalidInternId;
using analysis::DiGraph;
using analysis::Loop;
using analysis::MemLoc;
using analysis::NodeId;

const FunctionContext &
FunctionContextCache::get(const ir::Function &func)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = contexts_.find(&func);
    if (it == contexts_.end()) {
        it = contexts_
                 .emplace(&func, std::make_unique<FunctionContext>(func))
                 .first;
    }
    return *it->second;
}

void
FunctionContextCache::put(const ir::Function &func,
                          std::unique_ptr<FunctionContext> ctx)
{
    std::lock_guard<std::mutex> lock(mutex_);
    contexts_.emplace(&func, std::move(ctx));
}

/**
 * Summary of a natural loop, used to treat the whole loop as a single
 * pseudo-block in enclosing analyses (§3.1.2).
 */
struct IdempotenceAnalysis::LoopSummaryData
{
    bool unknown = false;
    std::string reason;
    /// AS^l: every (live) store the loop may execute. RS^l == AS^l.
    IdSet as;
    /// GA^l: addresses guaranteed overwritten whenever the loop runs.
    IdSet ga;
    /// EA^l: addresses exposed by unguarded loads on paths through the
    /// loop.
    IdSet ea;
    /// Violating (exposed origin, store origin) pairs found inside the
    /// loop; rediscovered by enclosing regions through the pseudo-block
    /// check, kept here for direct loop queries.
    std::vector<IdempotenceResult::Violation> violations;
};

/**
 * Condensed acyclic view of a region or loop body: plain blocks stay
 * themselves; maximal contained loops collapse into pseudo-nodes
 * carrying their summaries. All sets hold interned IDs: EntryIds for
 * AS/RS/EA, GuardIds for the must-sets.
 */
struct IdempotenceAnalysis::Subgraph
{
    const ir::Function *func = nullptr;
    bool loop_mode = false;
    bool unknown = false;
    std::string reason;

    struct Node
    {
        bool is_loop = false;
        const Loop *loop = nullptr; // when is_loop
        ir::BlockId block = 0;      // when !is_loop
        bool live = true;

        IdSet as;       ///< Stores (may), EntryIds.
        IdSet as_must;  ///< Stores with exact addresses, GuardIds.
        IdSet ea_local; ///< Locally exposed loads, EntryIds.

        IdSet rs;
        IdSet ga;
        IdSet ea;
    };

    std::vector<Node> nodes;
    DiGraph graph{0};
    NodeId entry = 0;
    /// Nodes that exit the subgraph (outside successor or no
    /// successors), ascending.
    std::vector<NodeId> exits;

    /// Analysis outputs.
    std::vector<IdempotenceResult::Violation> violations;
    /// Offending plain stores (self entries of Store instructions).
    IdSet offender_store_entries;
    /// Offending summarized side effects (call-anchored entries).
    IdSet offender_call_entries;
};

IdempotenceAnalysis::IdempotenceAnalysis(
    const ir::Module &module, const analysis::AliasAnalysis &aa,
    const CallSummaries &summaries, const interp::ProfileData *profile,
    Options options, FunctionContextCache *shared_contexts)
    : module_(module),
      aa_(aa),
      summaries_(summaries),
      profile_(profile),
      options_(options),
      filter_(interner_, aa),
      contexts_(shared_contexts ? shared_contexts : &own_contexts_)
{
    internModule();
}

IdempotenceAnalysis::~IdempotenceAnalysis() = default;

const FunctionContext &
IdempotenceAnalysis::context(const ir::Function &func)
{
    return contexts_->get(func);
}

/**
 * Deterministic pre-pass: walk the module in program order and intern
 * every location the dataflow can encounter — the classified address of
 * each load/store (tagged with the instruction itself) and each call
 * summary's mod/ref sets re-anchored at the call site. Region analysis
 * afterwards never interns, so IDs (and thus every set, in ascending-ID
 * order) are independent of analysis order and thread count.
 */
void
IdempotenceAnalysis::internModule()
{
    for (const auto &func : module_.functions()) {
        std::vector<std::vector<Event>> events(func->numBlocks());
        for (const auto &bb : func->blocks()) {
            std::vector<Event> &list = events[bb->id()];
            for (const auto &inst : bb->instructions()) {
                switch (inst.opcode()) {
                  case ir::Opcode::Load:
                  case ir::Opcode::Store: {
                    const MemLoc loc = aa_.classify(*func, inst);
                    const analysis::LocId loc_id = interner_.internLoc(loc);
                    Event ev;
                    ev.kind = inst.opcode() == ir::Opcode::Load
                                  ? Event::Kind::Load
                                  : Event::Kind::Store;
                    ev.entry = interner_.internEntry(loc_id, &inst);
                    ev.guard = interner_.guardOfLoc(loc_id);
                    list.push_back(ev);
                    break;
                  }
                  case ir::Opcode::Call: {
                    const ir::Function *callee = inst.callee();
                    ENCORE_ASSERT(callee,
                                  "unresolved call during analysis");
                    CallSite site;
                    const FunctionSummary &summary =
                        summaries_.summary(*callee);
                    if (!summary.analyzable) {
                        site.ok = false;
                        site.fail_reason = "call to @" + callee->name() +
                                           ": " + summary.reason;
                    } else if (!options_.use_call_summaries &&
                               summary.hasSideEffects()) {
                        site.ok = false;
                        site.fail_reason =
                            "call to @" + callee->name() +
                            " with side effects (summaries disabled)";
                    } else {
                        for (const analysis::LocEntry &ref :
                             summary.ref.entries()) {
                            const analysis::LocId loc_id =
                                interner_.internLoc(ref.loc);
                            site.refs.emplace_back(
                                interner_.internEntry(loc_id, &inst),
                                interner_.guardOfLoc(loc_id));
                        }
                        for (const analysis::LocEntry &mod :
                             summary.mod.entries()) {
                            site.mods.insert(
                                interner_.internEntry(mod.loc, &inst));
                        }
                    }
                    Event ev;
                    ev.kind = Event::Kind::Call;
                    ev.call = static_cast<std::uint32_t>(
                        call_sites_.size());
                    call_sites_.push_back(std::move(site));
                    list.push_back(ev);
                    break;
                  }
                  default:
                    break;
                }
            }
        }
        block_events_.emplace(func.get(), std::move(events));
    }
}

std::unique_ptr<IdempotenceAnalysis::Subgraph>
IdempotenceAnalysis::buildSubgraph(const ir::Function &func,
                                   ir::BlockId header,
                                   const std::vector<ir::BlockId> &blocks,
                                   bool loop_mode)
{
    auto sub = std::make_unique<Subgraph>();
    sub->func = &func;
    sub->loop_mode = loop_mode;

    const FunctionContext &ctx = context(func);

    auto fail = [&](const std::string &reason) {
        sub->unknown = true;
        sub->reason = reason;
        return std::move(sub);
    };

    auto in_set = [&](ir::BlockId id) {
        return std::binary_search(blocks.begin(), blocks.end(), id);
    };

    // --- Select the maximal loops to collapse -----------------------------
    // A loop is relevant when it is fully inside the block set and is
    // not the subgraph itself (in loop mode). Loops are scanned from
    // outermost (largest) to innermost so only maximal ones are kept.
    std::vector<const Loop *> collapsed;
    {
        std::vector<Loop *> by_size_desc = ctx.loops.loopsInnerFirst();
        std::reverse(by_size_desc.begin(), by_size_desc.end());
        for (const Loop *loop : by_size_desc) {
            const bool is_whole = loop_mode && loop->header == header &&
                                  loop->blocks.size() == blocks.size();
            if (is_whole)
                continue;
            bool inside = true;
            for (const NodeId b : loop->blocks) {
                if (!in_set(static_cast<ir::BlockId>(b))) {
                    inside = false;
                    break;
                }
            }
            if (!inside)
                continue;
            bool in_collapsed = false;
            for (const Loop *outer : collapsed) {
                if (outer->contains(loop->header)) {
                    in_collapsed = true;
                    break;
                }
            }
            if (!in_collapsed)
                collapsed.push_back(loop);
        }
    }
    if (loop_mode) {
        for (const Loop *loop : collapsed) {
            ENCORE_ASSERT(!loop->contains(header),
                          "proper subloop contains the loop header");
        }
    }

    // --- Create nodes -------------------------------------------------------
    constexpr NodeId kNoNode = static_cast<NodeId>(-1);
    std::vector<NodeId> node_of(func.numBlocks(), kNoNode);
    for (const Loop *loop : collapsed) {
        Subgraph::Node node;
        node.is_loop = true;
        node.loop = loop;
        const NodeId id = static_cast<NodeId>(sub->nodes.size());
        for (const NodeId b : loop->blocks)
            node_of[static_cast<ir::BlockId>(b)] = id;
        sub->nodes.push_back(std::move(node));
    }
    for (const ir::BlockId block : blocks) {
        if (node_of[block] != kNoNode)
            continue;
        Subgraph::Node node;
        node.block = block;
        node_of[block] = static_cast<NodeId>(sub->nodes.size());
        sub->nodes.push_back(std::move(node));
    }
    sub->entry = node_of[header];

    // --- Edges (condensed, intra-region, back edges dropped in loop
    // mode) -------------------------------------------------------------------
    sub->graph = DiGraph(sub->nodes.size());
    for (const ir::BlockId block : blocks) {
        const NodeId cu = node_of[block];
        const ir::BasicBlock *bb = func.blockById(block);
        for (const ir::BasicBlock *succ : bb->successors()) {
            if (!in_set(succ->id()))
                continue;
            if (loop_mode && succ->id() == header)
                continue; // back edge of the loop under analysis
            const NodeId cv = node_of[succ->id()];
            if (cu == cv)
                continue;
            // Entering a collapsed loop anywhere but its header is a
            // side entry — not canonicalizable.
            const Subgraph::Node &target = sub->nodes[cv];
            if (target.is_loop &&
                succ->id() !=
                    static_cast<ir::BlockId>(target.loop->header)) {
                return fail("side entry into a loop");
            }
            sub->graph.addEdge(cu, cv);
        }
    }

    if (sub->graph.hasCycle(sub->entry))
        return fail("irreducible cycle (cannot canonicalize)");

    // --- Liveness (Pmin pruning, §3.4.1) -----------------------------------
    const bool prune = options_.pmin >= 0.0 && profile_ &&
                       !profile_->empty();
    for (NodeId n = 0; n < sub->nodes.size(); ++n) {
        Subgraph::Node &node = sub->nodes[n];
        if (!prune || n == sub->entry)
            continue;
        const ir::BlockId probe =
            node.is_loop ? static_cast<ir::BlockId>(node.loop->header)
                         : node.block;
        const double prob = profile_->blockProbability(func, probe);
        if (prob == 0.0 || prob < options_.pmin)
            node.live = false;
    }

    // --- Per-node access summaries ------------------------------------------
    const std::vector<std::vector<Event>> &events = block_events_.at(&func);
    for (Subgraph::Node &node : sub->nodes) {
        if (node.is_loop) {
            const LoopSummaryData &summary =
                loopSummary(func, node.loop);
            if (summary.unknown)
                return fail(summary.reason);
            node.as = summary.as;
            node.as_must = summary.ga;
            node.ea_local = summary.ea;
            continue;
        }

        IdSet local_guard;
        for (const Event &ev : events[node.block]) {
            switch (ev.kind) {
              case Event::Kind::Load:
                if (ev.guard == kInvalidInternId ||
                    !local_guard.contains(ev.guard)) {
                    node.ea_local.insert(ev.entry);
                }
                break;
              case Event::Kind::Store:
                node.as.insert(ev.entry);
                if (ev.guard != kInvalidInternId) {
                    node.as_must.insert(ev.guard);
                    // Subsequent loads of this exact word within the
                    // block are locally guarded (Equation 3's
                    // EA_local).
                    local_guard.insert(ev.guard);
                }
                break;
              case Event::Kind::Call: {
                const CallSite &site = call_sites_[ev.call];
                if (!site.ok)
                    return fail(site.fail_reason);
                for (const auto &[ref_entry, ref_guard] : site.refs) {
                    if (ref_guard == kInvalidInternId ||
                        !local_guard.contains(ref_guard)) {
                        node.ea_local.insert(ref_entry);
                    }
                }
                node.as.unionWith(site.mods);
                // Flow-insensitive summaries cannot promise a write on
                // every path, so calls contribute nothing to as_must.
                break;
              }
            }
        }
    }

    // --- Exits -------------------------------------------------------------------
    {
        std::vector<NodeId> exit_nodes;
        for (const ir::BlockId block : blocks) {
            const ir::BasicBlock *bb = func.blockById(block);
            const auto succs = bb->successors();
            bool exits_here = succs.empty();
            for (const ir::BasicBlock *succ : succs) {
                if (!in_set(succ->id()))
                    exits_here = true;
            }
            if (exits_here)
                exit_nodes.push_back(node_of[block]);
        }
        if (loop_mode) {
            // With back edges dropped, latches become sinks of the DAG
            // and terminate iteration paths.
            for (const NodeId latch_block :
                 ctx.loops.loopWithHeader(header)
                     ? ctx.loops.loopWithHeader(header)->latches
                     : std::vector<NodeId>{}) {
                exit_nodes.push_back(
                    node_of[static_cast<ir::BlockId>(latch_block)]);
            }
        }
        std::sort(exit_nodes.begin(), exit_nodes.end());
        exit_nodes.erase(
            std::unique(exit_nodes.begin(), exit_nodes.end()),
            exit_nodes.end());
        sub->exits = std::move(exit_nodes);
    }

    return sub;
}

void
IdempotenceAnalysis::analyzeSubgraph(Subgraph &sub)
{
    if (sub.unknown)
        return;

    const std::vector<NodeId> rpo = sub.graph.reversePostOrder(sub.entry);

    // --- Forward pass: reachable stores (Equation 1) -------------------------
    if (sub.loop_mode) {
        // RS^l = AS^l for every node: all cross-iteration WARs count.
        IdSet as_all;
        for (const Subgraph::Node &node : sub.nodes) {
            if (node.live)
                as_all.unionWith(node.as);
        }
        for (Subgraph::Node &node : sub.nodes)
            node.rs = as_all;
    } else {
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            Subgraph::Node &node = sub.nodes[*it];
            node.rs = node.as;
            for (const NodeId succ : sub.graph.succs(*it)) {
                const Subgraph::Node &child = sub.nodes[succ];
                if (!child.live)
                    continue; // pruned from C' (§3.4.1)
                node.rs.unionWith(child.rs);
                node.rs.unionWith(child.as);
            }
        }
    }

    // --- Reverse pass: guarded & exposed addresses (Equations 2, 3) -----------
    for (const NodeId id : rpo) {
        Subgraph::Node &node = sub.nodes[id];

        bool first_pred = true;
        for (const NodeId pred_id : sub.graph.preds(id)) {
            const Subgraph::Node &pred = sub.nodes[pred_id];
            if (!pred.live)
                continue;
            IdSet incoming = pred.ga;
            incoming.unionWith(pred.as_must);
            if (first_pred) {
                node.ga = std::move(incoming);
                first_pred = false;
            } else {
                node.ga.intersectWith(incoming);
            }
            node.ea.unionWith(pred.ea);
        }
        // Entry (or all predecessors pruned): nothing is guarded.
        if (first_pred)
            node.ga = IdSet();

        node.ea_local.forEach([&](EntryId entry) {
            const GuardId guard = interner_.guardOfEntry(entry);
            if (guard == kInvalidInternId || !node.ga.contains(guard))
                node.ea.insert(entry);
        });
    }

    // --- Violation check (Equation 4) ----------------------------------------------
    for (const NodeId id : rpo) {
        Subgraph::Node &node = sub.nodes[id];
        if (!node.live)
            continue;
        filter_.forEachAliasingPair(
            node.ea, node.rs, [&](EntryId exposed, EntryId store) {
                const analysis::LocEntry &exposed_entry =
                    interner_.entry(exposed);
                const analysis::LocEntry &store_entry =
                    interner_.entry(store);
                sub.violations.push_back(IdempotenceResult::Violation{
                    exposed_entry.origin, store_entry.origin});
                if (store_entry.origin &&
                    store_entry.origin->opcode() == ir::Opcode::Store) {
                    sub.offender_store_entries.insert(store);
                } else if (store_entry.origin &&
                           store_entry.origin->opcode() ==
                               ir::Opcode::Call) {
                    sub.offender_call_entries.insert(store);
                }
            });
    }
}

const IdempotenceAnalysis::LoopSummaryData &
IdempotenceAnalysis::loopSummary(const ir::Function &func, const Loop *loop)
{
    auto it = loop_summaries_.find(loop);
    if (it != loop_summaries_.end())
        return *it->second;

    auto data = std::make_unique<LoopSummaryData>();

    std::vector<ir::BlockId> blocks;
    blocks.reserve(loop->blocks.size());
    for (const NodeId b : loop->blocks)
        blocks.push_back(static_cast<ir::BlockId>(b));
    std::sort(blocks.begin(), blocks.end());

    auto sub = buildSubgraph(func, static_cast<ir::BlockId>(loop->header),
                             blocks, /*loop_mode=*/true);
    analyzeSubgraph(*sub);

    if (sub->unknown) {
        data->unknown = true;
        data->reason = sub->reason;
    } else {
        // AS^l over live nodes (== RS^l).
        for (const Subgraph::Node &node : sub->nodes) {
            if (node.live)
                data->as.unionWith(node.as);
        }
        // GA^l = ∩ over live exits of (GA ∪ must-stores); EA^l = ∪ EA.
        bool first = true;
        for (const NodeId exit : sub->exits) {
            const Subgraph::Node &node = sub->nodes[exit];
            if (!node.live)
                continue;
            IdSet guards = node.ga;
            guards.unionWith(node.as_must);
            if (first) {
                data->ga = std::move(guards);
                first = false;
            } else {
                data->ga.intersectWith(guards);
            }
            data->ea.unionWith(node.ea);
        }
        data->violations = sub->violations;
    }

    auto [pos, _] = loop_summaries_.emplace(loop, std::move(data));
    return *pos->second;
}

IdempotenceResult
IdempotenceAnalysis::analyzeRegion(const Region &region)
{
    IdempotenceResult result;
    ENCORE_ASSERT(region.func, "region without a function");
    const ir::Function &func = *region.func;
    const FunctionContext &ctx = context(func);

    // Loop mode applies when the region is exactly a natural loop.
    bool loop_mode = false;
    if (const Loop *loop = ctx.loops.loopWithHeader(region.header)) {
        if (loop->blocks.size() == region.blocks.size()) {
            bool same = true;
            for (const NodeId b : loop->blocks) {
                if (!region.contains(static_cast<ir::BlockId>(b))) {
                    same = false;
                    break;
                }
            }
            loop_mode = same;
        }
    }

    auto sub = buildSubgraph(func, region.header, region.blocks, loop_mode);
    analyzeSubgraph(*sub);

    if (sub->unknown) {
        result.cls = RegionClass::Unknown;
        result.unknown_reason = sub->reason;
        return result;
    }

    result.violations = sub->violations;
    if (sub->offender_store_entries.empty() &&
        sub->offender_call_entries.empty()) {
        result.cls = RegionClass::Idempotent;
        return result;
    }

    result.cls = RegionClass::NonIdempotent;
    sub->offender_store_entries.forEach([&](EntryId entry) {
        result.checkpoint_stores.push_back(interner_.entry(entry).origin);
    });
    // Match the historical emission order (address order — the entries
    // came out of a pointer-keyed set before the interning rewrite).
    std::sort(result.checkpoint_stores.begin(),
              result.checkpoint_stores.end());

    // Group offending call side effects per call site; every location
    // must be exact to be checkpointable before the call. Groups are
    // emitted in call address order, mods in interned-entry order.
    std::vector<std::pair<const ir::Instruction *, std::vector<MemLoc>>>
        per_call;
    std::unordered_map<const ir::Instruction *, std::size_t> group_of;
    sub->offender_call_entries.forEach([&](EntryId entry) {
        const analysis::LocEntry &loc_entry = interner_.entry(entry);
        if (!loc_entry.loc.isExact())
            result.checkpointable = false;
        auto [it, inserted] =
            group_of.try_emplace(loc_entry.origin, per_call.size());
        if (inserted)
            per_call.emplace_back(loc_entry.origin,
                                  std::vector<MemLoc>{});
        per_call[it->second].second.push_back(loc_entry.loc);
    });
    std::sort(per_call.begin(), per_call.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (auto &[call, mods] : per_call) {
        result.checkpoint_calls.push_back(
            IdempotenceResult::CallCheckpoint{call, std::move(mods)});
    }

    return result;
}

} // namespace encore
