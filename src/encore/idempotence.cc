#include "encore/idempotence.h"

#include <algorithm>
#include <set>

#include "support/diagnostics.h"

namespace encore {

using analysis::DiGraph;
using analysis::GuardSet;
using analysis::LocationSet;
using analysis::Loop;
using analysis::MemLoc;
using analysis::NodeId;

/**
 * Summary of a natural loop, used to treat the whole loop as a single
 * pseudo-block in enclosing analyses (§3.1.2).
 */
struct IdempotenceAnalysis::LoopSummaryData
{
    bool unknown = false;
    std::string reason;
    /// AS^l: every (live) store the loop may execute. RS^l == AS^l.
    LocationSet as;
    /// GA^l: addresses guaranteed overwritten whenever the loop runs.
    GuardSet ga;
    /// EA^l: addresses exposed by unguarded loads on paths through the
    /// loop.
    LocationSet ea;
    /// Violating (exposed origin, store origin, store loc) triples
    /// found inside the loop; rediscovered by enclosing regions through
    /// the pseudo-block check, kept here for direct loop queries.
    std::vector<IdempotenceResult::Violation> violations;
};

/**
 * Condensed acyclic view of a region or loop body: plain blocks stay
 * themselves; maximal contained loops collapse into pseudo-nodes
 * carrying their summaries.
 */
struct IdempotenceAnalysis::Subgraph
{
    const ir::Function *func = nullptr;
    bool loop_mode = false;
    bool unknown = false;
    std::string reason;

    struct Node
    {
        bool is_loop = false;
        const Loop *loop = nullptr;       // when is_loop
        ir::BlockId block = 0;            // when !is_loop
        bool live = true;

        LocationSet as;       ///< Stores (may).
        GuardSet as_must;     ///< Stores with exact addresses (must).
        LocationSet ea_local; ///< Locally exposed loads.

        LocationSet rs;
        GuardSet ga;
        LocationSet ea;
    };

    std::vector<Node> nodes;
    DiGraph graph{0};
    NodeId entry = 0;
    /// Nodes that exit the subgraph (outside successor or no
    /// successors).
    std::vector<NodeId> exits;

    /// Analysis outputs.
    std::vector<IdempotenceResult::Violation> violations;
    /// Offending plain stores.
    std::set<const ir::Instruction *> offender_stores;
    /// Offending summarized side effects: (call instruction, location).
    std::set<std::pair<const ir::Instruction *, std::size_t>>
        offender_call_keys;
    std::vector<std::pair<const ir::Instruction *, MemLoc>> offender_calls;
};

IdempotenceAnalysis::IdempotenceAnalysis(const ir::Module &module,
                                         const analysis::AliasAnalysis &aa,
                                         const CallSummaries &summaries,
                                         const interp::ProfileData *profile,
                                         Options options)
    : module_(module),
      aa_(aa),
      summaries_(summaries),
      profile_(profile),
      options_(options)
{
}

IdempotenceAnalysis::~IdempotenceAnalysis() = default;

const IdempotenceAnalysis::FunctionContext &
IdempotenceAnalysis::context(const ir::Function &func)
{
    auto it = contexts_.find(&func);
    if (it == contexts_.end()) {
        it = contexts_
                 .emplace(&func, std::make_unique<FunctionContext>(func))
                 .first;
    }
    return *it->second;
}

namespace {

/// Rewrites a callee-summary location set so every entry is anchored at
/// the call site (for checkpoint planning; alias queries then fall back
/// to location-level reasoning).
LocationSet
anchorAtCall(const LocationSet &set, const ir::Instruction *call)
{
    LocationSet anchored;
    for (const analysis::LocEntry &entry : set.entries())
        anchored.add(entry.loc, call);
    return anchored;
}

} // namespace

std::unique_ptr<IdempotenceAnalysis::Subgraph>
IdempotenceAnalysis::buildSubgraph(const ir::Function &func,
                                   ir::BlockId header,
                                   const std::vector<ir::BlockId> &blocks,
                                   bool loop_mode)
{
    auto sub = std::make_unique<Subgraph>();
    sub->func = &func;
    sub->loop_mode = loop_mode;

    const FunctionContext &ctx = context(func);

    auto fail = [&](const std::string &reason) {
        sub->unknown = true;
        sub->reason = reason;
        return std::move(sub);
    };

    auto in_set = [&](ir::BlockId id) {
        return std::binary_search(blocks.begin(), blocks.end(), id);
    };

    // --- Select the maximal loops to collapse -----------------------------
    // A loop is relevant when it is fully inside the block set and is
    // not the subgraph itself (in loop mode). Loops are scanned from
    // outermost (largest) to innermost so only maximal ones are kept.
    std::vector<const Loop *> collapsed;
    {
        std::vector<Loop *> by_size_desc = ctx.loops.loopsInnerFirst();
        std::reverse(by_size_desc.begin(), by_size_desc.end());
        for (const Loop *loop : by_size_desc) {
            const bool is_whole = loop_mode && loop->header == header &&
                                  loop->blocks.size() == blocks.size();
            if (is_whole)
                continue;
            bool inside = true;
            for (const NodeId b : loop->blocks) {
                if (!in_set(static_cast<ir::BlockId>(b))) {
                    inside = false;
                    break;
                }
            }
            if (!inside)
                continue;
            bool in_collapsed = false;
            for (const Loop *outer : collapsed) {
                if (outer->contains(loop->header)) {
                    in_collapsed = true;
                    break;
                }
            }
            if (!in_collapsed)
                collapsed.push_back(loop);
        }
    }
    if (loop_mode) {
        for (const Loop *loop : collapsed) {
            ENCORE_ASSERT(!loop->contains(header),
                          "proper subloop contains the loop header");
        }
    }

    // --- Create nodes -------------------------------------------------------
    std::map<ir::BlockId, NodeId> node_of;
    for (const Loop *loop : collapsed) {
        Subgraph::Node node;
        node.is_loop = true;
        node.loop = loop;
        const NodeId id = static_cast<NodeId>(sub->nodes.size());
        for (const NodeId b : loop->blocks)
            node_of[static_cast<ir::BlockId>(b)] = id;
        sub->nodes.push_back(std::move(node));
    }
    for (const ir::BlockId block : blocks) {
        if (node_of.count(block))
            continue;
        Subgraph::Node node;
        node.block = block;
        node_of[block] = static_cast<NodeId>(sub->nodes.size());
        sub->nodes.push_back(std::move(node));
    }
    sub->entry = node_of.at(header);

    // --- Edges (condensed, intra-region, back edges dropped in loop
    // mode) -------------------------------------------------------------------
    sub->graph = DiGraph(sub->nodes.size());
    for (const ir::BlockId block : blocks) {
        const NodeId cu = node_of.at(block);
        const ir::BasicBlock *bb = func.blockById(block);
        for (const ir::BasicBlock *succ : bb->successors()) {
            if (!in_set(succ->id()))
                continue;
            if (loop_mode && succ->id() == header)
                continue; // back edge of the loop under analysis
            const NodeId cv = node_of.at(succ->id());
            if (cu == cv)
                continue;
            // Entering a collapsed loop anywhere but its header is a
            // side entry — not canonicalizable.
            const Subgraph::Node &target = sub->nodes[cv];
            if (target.is_loop &&
                succ->id() !=
                    static_cast<ir::BlockId>(target.loop->header)) {
                return fail("side entry into a loop");
            }
            sub->graph.addEdge(cu, cv);
        }
    }

    if (sub->graph.hasCycle(sub->entry))
        return fail("irreducible cycle (cannot canonicalize)");

    // --- Liveness (Pmin pruning, §3.4.1) -----------------------------------
    const bool prune = options_.pmin >= 0.0 && profile_ &&
                       !profile_->empty();
    for (NodeId n = 0; n < sub->nodes.size(); ++n) {
        Subgraph::Node &node = sub->nodes[n];
        if (!prune || n == sub->entry)
            continue;
        const ir::BlockId probe =
            node.is_loop ? static_cast<ir::BlockId>(node.loop->header)
                         : node.block;
        const double prob = profile_->blockProbability(func, probe);
        if (prob == 0.0 || prob < options_.pmin)
            node.live = false;
    }

    // --- Per-node access summaries ------------------------------------------
    for (Subgraph::Node &node : sub->nodes) {
        if (node.is_loop) {
            const LoopSummaryData &summary =
                loopSummary(func, node.loop);
            if (summary.unknown)
                return fail(summary.reason);
            node.as = summary.as;
            node.as_must = summary.ga;
            node.ea_local = summary.ea;
            continue;
        }

        GuardSet local_guard;
        const ir::BasicBlock *bb = func.blockById(node.block);
        for (const auto &inst : bb->instructions()) {
            switch (inst.opcode()) {
              case ir::Opcode::Load: {
                const MemLoc loc = aa_.classify(func, inst);
                if (!local_guard.covers(loc))
                    node.ea_local.add(loc, &inst);
                break;
              }
              case ir::Opcode::Store: {
                const MemLoc loc = aa_.classify(func, inst);
                node.as.add(loc, &inst);
                node.as_must.insert(loc);
                // Subsequent loads of this exact word within the block
                // are locally guarded (Equation 3's EA_local).
                local_guard.insert(loc);
                break;
              }
              case ir::Opcode::Call: {
                const ir::Function *callee = inst.callee();
                ENCORE_ASSERT(callee, "unresolved call during analysis");
                const FunctionSummary &summary =
                    summaries_.summary(*callee);
                if (!summary.analyzable)
                    return fail("call to @" + callee->name() + ": " +
                                summary.reason);
                if (!options_.use_call_summaries &&
                    summary.hasSideEffects()) {
                    return fail("call to @" + callee->name() +
                                " with side effects (summaries disabled)");
                }
                for (const analysis::LocEntry &ref :
                     summary.ref.entries()) {
                    if (!local_guard.covers(ref.loc))
                        node.ea_local.add(ref.loc, &inst);
                }
                node.as.unionWith(anchorAtCall(summary.mod, &inst));
                // Flow-insensitive summaries cannot promise a write on
                // every path, so calls contribute nothing to as_must.
                break;
              }
              default:
                break;
            }
        }
    }

    // --- Exits -------------------------------------------------------------------
    {
        std::set<NodeId> exit_set;
        for (const ir::BlockId block : blocks) {
            const ir::BasicBlock *bb = func.blockById(block);
            const auto succs = bb->successors();
            bool exits_here = succs.empty();
            for (const ir::BasicBlock *succ : succs) {
                if (!in_set(succ->id()))
                    exits_here = true;
            }
            if (exits_here)
                exit_set.insert(node_of.at(block));
        }
        if (loop_mode) {
            // With back edges dropped, latches become sinks of the DAG
            // and terminate iteration paths.
            for (const NodeId latch_block :
                 ctx.loops.loopWithHeader(header)
                     ? ctx.loops.loopWithHeader(header)->latches
                     : std::vector<NodeId>{}) {
                exit_set.insert(
                    node_of.at(static_cast<ir::BlockId>(latch_block)));
            }
        }
        sub->exits.assign(exit_set.begin(), exit_set.end());
    }

    return sub;
}

void
IdempotenceAnalysis::analyzeSubgraph(Subgraph &sub) const
{
    if (sub.unknown)
        return;

    const std::vector<NodeId> rpo = sub.graph.reversePostOrder(sub.entry);

    // --- Forward pass: reachable stores (Equation 1) -------------------------
    if (sub.loop_mode) {
        // RS^l = AS^l for every node: all cross-iteration WARs count.
        LocationSet as_all;
        for (const Subgraph::Node &node : sub.nodes) {
            if (node.live)
                as_all.unionWith(node.as);
        }
        for (Subgraph::Node &node : sub.nodes)
            node.rs = as_all;
    } else {
        for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
            Subgraph::Node &node = sub.nodes[*it];
            node.rs = node.as;
            for (const NodeId succ : sub.graph.succs(*it)) {
                const Subgraph::Node &child = sub.nodes[succ];
                if (!child.live)
                    continue; // pruned from C' (§3.4.1)
                node.rs.unionWith(child.rs);
                node.rs.unionWith(child.as);
            }
        }
    }

    // --- Reverse pass: guarded & exposed addresses (Equations 2, 3) -----------
    for (const NodeId id : rpo) {
        Subgraph::Node &node = sub.nodes[id];

        bool first_pred = true;
        for (const NodeId pred_id : sub.graph.preds(id)) {
            const Subgraph::Node &pred = sub.nodes[pred_id];
            if (!pred.live)
                continue;
            GuardSet incoming = pred.ga;
            incoming.unionWith(pred.as_must);
            if (first_pred) {
                node.ga = incoming;
                first_pred = false;
            } else {
                node.ga.intersectWith(incoming);
            }
            node.ea.unionWith(pred.ea);
        }
        // Entry (or all predecessors pruned): nothing is guarded.
        if (first_pred)
            node.ga = GuardSet();

        for (const analysis::LocEntry &entry : node.ea_local.entries()) {
            if (!node.ga.covers(entry.loc))
                node.ea.add(entry);
        }
    }

    // --- Violation check (Equation 4) ----------------------------------------------
    for (const NodeId id : rpo) {
        Subgraph::Node &node = sub.nodes[id];
        if (!node.live)
            continue;
        for (const analysis::LocEntry &exposed : node.ea.entries()) {
            for (const analysis::LocEntry &store : node.rs.entries()) {
                if (!aa_.mayAlias(exposed, store))
                    continue;
                sub.violations.push_back(
                    IdempotenceResult::Violation{exposed.origin,
                                                 store.origin});
                if (store.origin &&
                    store.origin->opcode() == ir::Opcode::Store) {
                    sub.offender_stores.insert(store.origin);
                } else if (store.origin &&
                           store.origin->opcode() == ir::Opcode::Call) {
                    // Deduplicate (call, loc) pairs.
                    bool seen = false;
                    for (const auto &[call, loc] : sub.offender_calls) {
                        if (call == store.origin && loc == store.loc) {
                            seen = true;
                            break;
                        }
                    }
                    if (!seen) {
                        sub.offender_calls.emplace_back(store.origin,
                                                        store.loc);
                    }
                }
            }
        }
    }
}

const IdempotenceAnalysis::LoopSummaryData &
IdempotenceAnalysis::loopSummary(const ir::Function &func, const Loop *loop)
{
    auto it = loop_summaries_.find(loop);
    if (it != loop_summaries_.end())
        return *it->second;

    auto data = std::make_unique<LoopSummaryData>();

    std::vector<ir::BlockId> blocks;
    blocks.reserve(loop->blocks.size());
    for (const NodeId b : loop->blocks)
        blocks.push_back(static_cast<ir::BlockId>(b));
    std::sort(blocks.begin(), blocks.end());

    auto sub = buildSubgraph(func, static_cast<ir::BlockId>(loop->header),
                             blocks, /*loop_mode=*/true);
    analyzeSubgraph(*sub);

    if (sub->unknown) {
        data->unknown = true;
        data->reason = sub->reason;
    } else {
        // AS^l over live nodes (== RS^l).
        for (const Subgraph::Node &node : sub->nodes) {
            if (node.live)
                data->as.unionWith(node.as);
        }
        // GA^l = ∩ over live exits of (GA ∪ must-stores); EA^l = ∪ EA.
        bool first = true;
        for (const NodeId exit : sub->exits) {
            const Subgraph::Node &node = sub->nodes[exit];
            if (!node.live)
                continue;
            GuardSet guards = node.ga;
            guards.unionWith(node.as_must);
            if (first) {
                data->ga = guards;
                first = false;
            } else {
                data->ga.intersectWith(guards);
            }
            data->ea.unionWith(node.ea);
        }
        data->violations = sub->violations;
    }

    auto [pos, _] = loop_summaries_.emplace(loop, std::move(data));
    return *pos->second;
}

IdempotenceResult
IdempotenceAnalysis::analyzeRegion(const Region &region)
{
    IdempotenceResult result;
    ENCORE_ASSERT(region.func, "region without a function");
    const ir::Function &func = *region.func;
    const FunctionContext &ctx = context(func);

    // Loop mode applies when the region is exactly a natural loop.
    bool loop_mode = false;
    if (const Loop *loop = ctx.loops.loopWithHeader(region.header)) {
        if (loop->blocks.size() == region.blocks.size()) {
            bool same = true;
            for (const NodeId b : loop->blocks) {
                if (!region.contains(static_cast<ir::BlockId>(b))) {
                    same = false;
                    break;
                }
            }
            loop_mode = same;
        }
    }

    auto sub = buildSubgraph(func, region.header, region.blocks, loop_mode);
    analyzeSubgraph(*sub);

    if (sub->unknown) {
        result.cls = RegionClass::Unknown;
        result.unknown_reason = sub->reason;
        return result;
    }

    result.violations = sub->violations;
    if (sub->offender_stores.empty() && sub->offender_calls.empty()) {
        result.cls = RegionClass::Idempotent;
        return result;
    }

    result.cls = RegionClass::NonIdempotent;
    result.checkpoint_stores.assign(sub->offender_stores.begin(),
                                    sub->offender_stores.end());

    // Group offending call side effects per call site; every location
    // must be exact to be checkpointable before the call.
    std::map<const ir::Instruction *, std::vector<MemLoc>> per_call;
    for (const auto &[call, loc] : sub->offender_calls) {
        if (!loc.isExact())
            result.checkpointable = false;
        per_call[call].push_back(loc);
    }
    for (auto &[call, mods] : per_call) {
        result.checkpoint_calls.push_back(
            IdempotenceResult::CallCheckpoint{call, std::move(mods)});
    }

    return result;
}

} // namespace encore
