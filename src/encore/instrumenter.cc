#include "encore/instrumenter.h"

#include <algorithm>

#include "support/diagnostics.h"

namespace encore {

namespace {

/// Finds the block owning an instruction within a region.
ir::BasicBlock *
owningBlock(ir::Function &func, const Region &region,
            const ir::Instruction *inst)
{
    for (const ir::BlockId id : region.blocks) {
        ir::BasicBlock *bb = func.blockById(id);
        for (const auto &candidate : bb->instructions()) {
            if (&candidate == inst)
                return bb;
        }
    }
    panicf("checkpointed instruction not found in its region (func @",
           func.name(), ")");
}

/// Redirects every edge into `header` whose source lies outside the
/// region to `preheader` instead. Back edges (sources inside the
/// region) keep targeting the header directly, so the region instance
/// spans all loop iterations.
void
rerouteOutsideEdges(ir::Function &func, const Region &region,
                    ir::BasicBlock *header, ir::BasicBlock *preheader)
{
    for (const auto &bb : func.blocks()) {
        if (bb.get() == preheader || region.contains(bb->id()))
            continue;
        ir::Instruction *term = bb->terminator();
        if (!term)
            continue;
        if (term->succ0() == header)
            term->setSucc0(preheader);
        if (term->opcode() == ir::Opcode::Br && term->succ1() == header)
            term->setSucc1(preheader);
    }
    if (func.entry() == header)
        func.setEntry(preheader);
}

} // namespace

void
instrumentFunction(ir::Function &func,
                   const std::vector<InstrumentedRegion *> &regions,
                   const analysis::Liveness &liveness)
{
    // Clearing enters only matter when a stale recovery target could
    // exist, i.e. when this function protects at least one region
    // (recovery state is per activation frame). A fully unprotected
    // function needs no instrumentation at all.
    bool any_selected = false;
    for (const InstrumentedRegion *region : regions)
        any_selected |= region->selected;
    if (!any_selected)
        return;

    for (InstrumentedRegion *region_ptr : regions) {
        InstrumentedRegion &region = *region_ptr;
        ENCORE_ASSERT(region.candidate.region.func == &func,
                      "region belongs to another function");
        ir::BasicBlock *header =
            func.blockById(region.candidate.region.header);

        ir::BasicBlock *recovery = nullptr;
        if (region.selected) {
            ENCORE_ASSERT(region.id != ir::kInvalidRegion,
                          "selected region without an id");

            // Recovery block: restore checkpoints, then re-enter the
            // region. Its jump is rerouted through the preheader below,
            // so a rollback re-runs region.enter and the register
            // checkpoints with the freshly restored values.
            recovery = func.createBlock("__recover." +
                                        std::to_string(region.id));
            {
                ir::Instruction restore(ir::Opcode::Restore);
                restore.setRegionId(region.id);
                recovery->append(std::move(restore));
                ir::Instruction back(ir::Opcode::Jmp);
                back.setSucc0(header);
                recovery->append(std::move(back));
            }
            region.recovery_block = recovery;

            // Memory checkpoints: before each CP store, reusing the
            // store's own address expression so the saved word is
            // exactly the one about to be overwritten.
            for (const ir::Instruction *store :
                 region.candidate.analysis.checkpoint_stores) {
                ir::BasicBlock *bb =
                    owningBlock(func, region.candidate.region, store);
                ir::Instruction ckpt(ir::Opcode::CkptMem);
                ckpt.setAddr(store->addr());
                bb->insertBefore(const_cast<ir::Instruction *>(store),
                                 std::move(ckpt));
            }
            // Before offending calls: checkpoint each exact summarized
            // location the callee may clobber.
            for (const auto &call_ckpt :
                 region.candidate.analysis.checkpoint_calls) {
                ir::BasicBlock *bb = owningBlock(
                    func, region.candidate.region, call_ckpt.call);
                for (const analysis::MemLoc &loc : call_ckpt.mods) {
                    ENCORE_ASSERT(
                        loc.isExact(),
                        "selected region with non-exact call mods");
                    ir::Instruction ckpt(ir::Opcode::CkptMem);
                    ckpt.setAddr(ir::AddrExpr::makeObject(
                        loc.bases[0], ir::Operand::makeImm(loc.offset)));
                    bb->insertBefore(
                        const_cast<ir::Instruction *>(call_ckpt.call),
                        std::move(ckpt));
                }
            }
        }

        // Preheader: executes once per entry from outside the region.
        // Selected regions publish their recovery block and checkpoint
        // the overwritten live-in registers; unselected regions clear
        // any stale recovery target.
        ir::BasicBlock *preheader =
            func.createBlock("__enter." + header->name());
        {
            ir::Instruction enter(ir::Opcode::RegionEnter);
            if (region.selected) {
                enter.setRegionId(region.id);
                enter.setSucc0(recovery);
            } else {
                enter.setRegionId(ir::kInvalidRegion);
            }
            preheader->append(std::move(enter));
            if (region.selected) {
                region.reg_ckpts = regionRegisterCheckpoints(
                    region.candidate.region, liveness);
                for (const ir::RegId reg : region.reg_ckpts) {
                    ir::Instruction ckpt(ir::Opcode::CkptReg);
                    ckpt.setA(ir::Operand::makeReg(reg));
                    preheader->append(std::move(ckpt));
                }
            }
            ir::Instruction go(ir::Opcode::Jmp);
            go.setSucc0(header);
            preheader->append(std::move(go));
        }

        rerouteOutsideEdges(func, region.candidate.region, header,
                            preheader);
    }

    func.recomputeCfg();
}

} // namespace encore
