/**
 * @file
 * Candidate region formation and merging (paper §3.3, §3.4.2).
 *
 * Level-0 intervals of the CFG seed the candidate set; the interval
 * hierarchy's derived levels propose progressively larger SEME regions.
 * For each derived interval the merge is adopted when the reliability
 * return justifies the extra checkpointing:
 *
 *   ΔCoverage = Coverage(r') / max(Coverage(r_i))        (Equation 5)
 *   ΔCost     = added overhead as a fraction of the function's
 *               dynamic instructions
 *   merge iff ΔCost <= 0, or ΔCoverage/ΔCost > η
 *
 * Merged candidates that the idempotence analysis cannot process
 * (Unknown) or cannot checkpoint are rejected, keeping their
 * constituents. The final region set always partitions the reachable
 * blocks of the function.
 */
#ifndef ENCORE_ENCORE_REGION_FORMATION_H
#define ENCORE_ENCORE_REGION_FORMATION_H

#include "analysis/liveness.h"
#include "encore/cost_model.h"
#include "encore/idempotence.h"

namespace encore {

/// A formed region together with its analysis and cost artifacts.
struct CandidateRegion
{
    Region region;
    IdempotenceResult analysis;
    RegionCost cost;
    /// Interval-hierarchy level the region was adopted from.
    unsigned level = 0;
};

/**
 * Pluggable (region → analysis + cost) evaluation, the unit of work the
 * sweep cache memoizes: the dataflow result of a region depends only on
 * the module, the alias/summary variant and pmin — not on γ/η or the
 * budget — so config sweeps can reuse it (see encore/analysis_base.h).
 */
class RegionEvaluator
{
  public:
    virtual ~RegionEvaluator() = default;

    /// Fills candidate.analysis and candidate.cost for
    /// candidate.region (header/blocks/func already set, blocks
    /// sorted).
    virtual void evaluate(CandidateRegion &candidate) = 0;
};

/// The direct, uncached evaluator: idempotence dataflow + cost model.
class DirectRegionEvaluator : public RegionEvaluator
{
  public:
    DirectRegionEvaluator(IdempotenceAnalysis &idem,
                          const CostModel &cost_model,
                          const analysis::Liveness &liveness)
        : idem_(idem), cost_model_(cost_model), liveness_(liveness)
    {
    }

    void
    evaluate(CandidateRegion &candidate) override
    {
        candidate.analysis = idem_.analyzeRegion(candidate.region);
        candidate.cost = cost_model_.evaluate(candidate.region,
                                              candidate.analysis,
                                              liveness_);
    }

  private:
    IdempotenceAnalysis &idem_;
    const CostModel &cost_model_;
    const analysis::Liveness &liveness_;
};

struct FormationOptions
{
    /// Merge acceptance threshold; larger values resist merging.
    double eta = 100.0;
    /// Disable to keep level-0 intervals only (ablation).
    bool merge = true;
    /// Reject merges whose expected per-instance checkpoint storage
    /// exceeds this many bytes (guard against pathological merges).
    double max_storage_bytes = 16384.0;
    /// Reject merges whose hot-path length would exceed this many
    /// dynamic instructions per instance (Table 1's interval target).
    double max_hot_path = 1000.0;
};

/**
 * Forms the final disjoint region set for one function, evaluating
 * candidates through `evaluator` (cached or direct). The interval
 * hierarchy comes from the function's shared context.
 */
std::vector<CandidateRegion> formRegions(const ir::Function &func,
                                         const FunctionContext &ctx,
                                         const interp::ProfileData &profile,
                                         RegionEvaluator &evaluator,
                                         const FormationOptions &options);

/**
 * Convenience overload: forms regions with the direct (uncached)
 * evaluator. `idem` is shared across calls so loop summaries and
 * function contexts are computed once per module configuration.
 */
std::vector<CandidateRegion> formRegions(const ir::Function &func,
                                         IdempotenceAnalysis &idem,
                                         const CostModel &cost_model,
                                         const analysis::Liveness &liveness,
                                         const FormationOptions &options);

} // namespace encore

#endif // ENCORE_ENCORE_REGION_FORMATION_H
