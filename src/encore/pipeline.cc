#include "encore/pipeline.h"

#include <algorithm>
#include <functional>

#include "interp/interpreter.h"
#include "ir/verifier.h"
#include "support/diagnostics.h"

namespace encore {

std::size_t
EncoreReport::countByClass(RegionClass cls) const
{
    std::size_t count = 0;
    for (const RegionReport &region : regions) {
        if (region.cls == cls)
            ++count;
    }
    return count;
}

namespace {

double
dynFraction(const EncoreReport &report,
            const std::function<bool(const RegionReport &)> &pred)
{
    if (report.baseline_dyn_instrs <= 0.0)
        return 0.0;
    double dyn = 0.0;
    for (const RegionReport &region : report.regions) {
        if (pred(region))
            dyn += region.dyn_instrs;
    }
    return dyn / report.baseline_dyn_instrs;
}

} // namespace

double
EncoreReport::dynFractionIdempotent() const
{
    return dynFraction(*this, [](const RegionReport &r) {
        return r.selected && r.cls == RegionClass::Idempotent;
    });
}

double
EncoreReport::dynFractionCheckpointed() const
{
    return dynFraction(*this, [](const RegionReport &r) {
        return r.selected && r.cls == RegionClass::NonIdempotent;
    });
}

double
EncoreReport::dynFractionUnprotected() const
{
    return dynFraction(*this,
                       [](const RegionReport &r) { return !r.selected; });
}

double
EncoreReport::avgStorageBytes() const
{
    return avgStorageMemBytes() + avgStorageRegBytes();
}

namespace {

double
entryWeightedStorage(const EncoreReport &report, int component)
{
    double weight = 0.0;
    double total = 0.0;
    for (const RegionReport &region : report.regions) {
        if (!region.selected || region.entries <= 0.0)
            continue;
        weight += region.entries;
        const double value =
            component == 0   ? region.static_storage_mem_bytes
            : component == 1 ? region.static_storage_reg_bytes
                             : region.storage_bytes;
        total += region.entries * value;
    }
    return weight > 0.0 ? total / weight : 0.0;
}

} // namespace

double
EncoreReport::avgStorageMemBytes() const
{
    return entryWeightedStorage(*this, 0);
}

double
EncoreReport::avgStorageRegBytes() const
{
    return entryWeightedStorage(*this, 1);
}

double
EncoreReport::avgDynStorageBytes() const
{
    return entryWeightedStorage(*this, 2);
}

double
EncoreReport::meanSelectedRegionLength() const
{
    double weight = 0.0;
    double total = 0.0;
    for (const RegionReport &region : regions) {
        if (!region.selected || region.entries <= 0.0)
            continue;
        weight += region.entries;
        total += region.entries * region.hot_path_length;
    }
    return weight > 0.0 ? total / weight : 0.0;
}

RegionClass
EncoreReport::classOf(ir::RegionId id) const
{
    for (const RegionReport &region : regions) {
        if (region.id == id)
            return region.cls;
    }
    return RegionClass::Unknown;
}

EncorePipeline::EncorePipeline(ir::Module &module, EncoreConfig config)
    : module_(module), config_(std::move(config))
{
}

EncorePipeline::~EncorePipeline() = default;

EncoreReport
EncorePipeline::run(const std::vector<RunSpec> &profile_runs)
{
    ENCORE_ASSERT(!ran_, "EncorePipeline::run may only be called once");
    ran_ = true;

    module_.resolveCalls();
    ir::verifyOrDie(module_);

    // The analysis assumes a pristine module.
    for (const auto &func : module_.functions()) {
        for (const auto &bb : func->blocks()) {
            for (const auto &inst : bb->instructions()) {
                ENCORE_ASSERT(!inst.isPseudo(),
                              "module is already instrumented");
            }
        }
    }

    // --- Stage 1: profiling ------------------------------------------------
    {
        interp::Interpreter interp(module_);
        interp::Profiler profiler(profile_);
        interp::AddressProfiler addr_profiler(addr_profile_);
        interp.addObserver(&profiler);
        interp.addObserver(&addr_profiler);
        interp.setMaxInstructions(config_.profile_max_instrs);
        for (const RunSpec &spec : profile_runs) {
            const interp::RunResult result = interp.run(spec.entry,
                                                        spec.args);
            if (!result.ok()) {
                fatalf("profiling run of @", spec.entry,
                       " failed: ", result.error);
            }
        }
    }

    // --- Stage 2: analyses --------------------------------------------------
    analysis::StaticAliasAnalysis static_aa(module_);
    std::unique_ptr<analysis::ProfileGuidedAliasAnalysis> optimistic_aa;
    const analysis::AliasAnalysis *aa = &static_aa;
    if (config_.alias_mode == EncoreConfig::AliasMode::Optimistic) {
        optimistic_aa =
            std::make_unique<analysis::ProfileGuidedAliasAnalysis>(
                static_aa, addr_profile_);
        aa = optimistic_aa.get();
    }

    CallSummaries summaries(module_, *aa, config_.opaque_functions);

    IdempotenceAnalysis::Options idem_options;
    idem_options.pmin = config_.prune ? config_.pmin : -1.0;
    idem_options.use_call_summaries = config_.use_call_summaries;
    IdempotenceAnalysis idem(module_, *aa, summaries, &profile_,
                             idem_options);

    CostModel cost_model(profile_);

    FormationOptions formation;
    formation.eta = config_.eta;
    formation.merge = config_.merge_regions;
    formation.max_storage_bytes = config_.max_storage_bytes;
    formation.max_hot_path = config_.max_region_length;

    // --- Stage 3: region formation & selection -------------------------------
    struct FunctionWork
    {
        ir::Function *func;
        std::unique_ptr<analysis::Liveness> liveness;
    };
    std::vector<FunctionWork> work;

    for (const auto &func : module_.functions()) {
        FunctionWork item;
        item.func = func.get();
        item.liveness = std::make_unique<analysis::Liveness>(*func);
        auto candidates = formRegions(*func, idem, cost_model,
                                      *item.liveness, formation);
        for (CandidateRegion &candidate : candidates) {
            InstrumentedRegion region;
            region.candidate = std::move(candidate);
            regions_.push_back(std::move(region));
        }
        work.push_back(std::move(item));
    }

    // Selection: γ filter.
    for (InstrumentedRegion &region : regions_) {
        const CandidateRegion &cand = region.candidate;
        if (cand.analysis.cls == RegionClass::Unknown) {
            region.rejection_reason = cand.analysis.unknown_reason;
            continue;
        }
        if (!cand.analysis.checkpointable) {
            region.rejection_reason = "offender not checkpointable";
            continue;
        }
        if (cand.cost.entries <= 0.0) {
            // Never profiled: protect only when free (idempotent).
            if (cand.analysis.isIdempotent()) {
                region.selected = true;
            } else {
                region.rejection_reason = "cold region needing checkpoints";
            }
            continue;
        }
        if (cand.cost.storage_bytes > config_.max_storage_bytes) {
            region.rejection_reason = "exceeds checkpoint storage budget";
            continue;
        }
        const double n = cand.cost.coverage();
        const double c = std::max(cand.cost.ckpt_per_entry, 1e-9);
        if (n * n / c > config_.gamma) {
            region.selected = true;
        } else {
            region.rejection_reason = "coverage/cost below gamma";
        }
    }

    // Budget auto-tune: drop the least efficient regions until the
    // projected overhead fits.
    const double baseline =
        static_cast<double>(profile_.totalDynInstrs());
    if (config_.auto_tune && baseline > 0.0) {
        auto projected = [&]() {
            // Clearing enters are only emitted in functions with at
            // least one protected region (see instrumentFunction).
            std::set<const ir::Function *> protected_funcs;
            for (const InstrumentedRegion &region : regions_) {
                if (region.selected)
                    protected_funcs.insert(region.candidate.region.func);
            }
            double total = 0.0;
            for (const InstrumentedRegion &region : regions_) {
                if (region.selected) {
                    total += region.candidate.cost.overhead_instrs;
                } else if (protected_funcs.count(
                               region.candidate.region.func)) {
                    total += region.candidate.cost.entries; // clear enter
                }
            }
            return total;
        };
        while (projected() > config_.overhead_budget * baseline) {
            InstrumentedRegion *worst = nullptr;
            double worst_ratio = -1.0;
            for (InstrumentedRegion &region : regions_) {
                if (!region.selected)
                    continue;
                const RegionCost &cost = region.candidate.cost;
                const double saved =
                    cost.overhead_instrs - cost.entries;
                if (saved <= 0.0)
                    continue; // dropping gains nothing
                const double ratio =
                    saved / std::max(cost.dyn_instrs, 1.0);
                if (ratio > worst_ratio) {
                    worst_ratio = ratio;
                    worst = &region;
                }
            }
            if (!worst)
                break;
            worst->selected = false;
            worst->rejection_reason = "dropped to meet overhead budget";
        }
    }

    // --- Stage 4: instrumentation ----------------------------------------------
    ir::RegionId next_id = 0;
    for (InstrumentedRegion &region : regions_) {
        if (region.selected)
            region.id = next_id++;
    }
    for (FunctionWork &item : work) {
        std::vector<InstrumentedRegion *> mine;
        for (InstrumentedRegion &region : regions_) {
            if (region.candidate.region.func == item.func)
                mine.push_back(&region);
        }
        instrumentFunction(*item.func, mine, *item.liveness);
    }

    ir::verifyOrDie(module_);

    // --- Stage 5: report ----------------------------------------------------------
    EncoreReport report;
    report.baseline_dyn_instrs = baseline;
    std::set<const ir::Function *> protected_funcs;
    for (const InstrumentedRegion &region : regions_) {
        if (region.selected)
            protected_funcs.insert(region.candidate.region.func);
    }
    for (const InstrumentedRegion &region : regions_) {
        const CandidateRegion &cand = region.candidate;
        RegionReport entry;
        entry.id = region.id;
        entry.function = cand.region.func->name();
        entry.header = cand.region.header;
        entry.num_blocks = cand.region.blocks.size();
        entry.cls = cand.analysis.cls;
        entry.unknown_reason = cand.analysis.unknown_reason;
        entry.selected = region.selected;
        entry.rejection_reason = region.rejection_reason;
        entry.entries = cand.cost.entries;
        entry.hot_path_length = cand.cost.hot_path_length;
        entry.dyn_instrs = cand.cost.dyn_instrs;
        entry.overhead_instrs =
            region.selected ? cand.cost.overhead_instrs
            : protected_funcs.count(cand.region.func)
                ? cand.cost.entries
                : 0.0;
        entry.static_mem_ckpts = cand.cost.static_mem_ckpts;
        entry.static_reg_ckpts = cand.cost.static_reg_ckpts;
        entry.storage_bytes = cand.cost.storage_bytes;
        entry.storage_mem_bytes = cand.cost.storage_mem_bytes;
        entry.storage_reg_bytes = cand.cost.storage_reg_bytes;
        entry.static_storage_mem_bytes =
            cand.cost.static_storage_mem_bytes;
        entry.static_storage_reg_bytes =
            cand.cost.static_storage_reg_bytes;
        report.projected_overhead_instrs += entry.overhead_instrs;
        report.regions.push_back(std::move(entry));
    }
    return report;
}

} // namespace encore
