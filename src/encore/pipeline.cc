#include "encore/pipeline.h"

#include <cstdio>
#include <functional>

#include "encore/analysis_base.h"
#include "support/diagnostics.h"

namespace encore {

std::size_t
EncoreReport::countByClass(RegionClass cls) const
{
    std::size_t count = 0;
    for (const RegionReport &region : regions) {
        if (region.cls == cls)
            ++count;
    }
    return count;
}

namespace {

double
dynFraction(const EncoreReport &report,
            const std::function<bool(const RegionReport &)> &pred)
{
    if (report.baseline_dyn_instrs <= 0.0)
        return 0.0;
    double dyn = 0.0;
    for (const RegionReport &region : report.regions) {
        if (pred(region))
            dyn += region.dyn_instrs;
    }
    return dyn / report.baseline_dyn_instrs;
}

} // namespace

double
EncoreReport::dynFractionIdempotent() const
{
    return dynFraction(*this, [](const RegionReport &r) {
        return r.selected && r.cls == RegionClass::Idempotent;
    });
}

double
EncoreReport::dynFractionCheckpointed() const
{
    return dynFraction(*this, [](const RegionReport &r) {
        return r.selected && r.cls == RegionClass::NonIdempotent;
    });
}

double
EncoreReport::dynFractionUnprotected() const
{
    return dynFraction(*this,
                       [](const RegionReport &r) { return !r.selected; });
}

double
EncoreReport::avgStorageBytes() const
{
    return avgStorageMemBytes() + avgStorageRegBytes();
}

namespace {

double
entryWeightedStorage(const EncoreReport &report, int component)
{
    double weight = 0.0;
    double total = 0.0;
    for (const RegionReport &region : report.regions) {
        if (!region.selected || region.entries <= 0.0)
            continue;
        weight += region.entries;
        const double value =
            component == 0   ? region.static_storage_mem_bytes
            : component == 1 ? region.static_storage_reg_bytes
                             : region.storage_bytes;
        total += region.entries * value;
    }
    return weight > 0.0 ? total / weight : 0.0;
}

} // namespace

double
EncoreReport::avgStorageMemBytes() const
{
    return entryWeightedStorage(*this, 0);
}

double
EncoreReport::avgStorageRegBytes() const
{
    return entryWeightedStorage(*this, 1);
}

double
EncoreReport::avgDynStorageBytes() const
{
    return entryWeightedStorage(*this, 2);
}

double
EncoreReport::meanSelectedRegionLength() const
{
    double weight = 0.0;
    double total = 0.0;
    for (const RegionReport &region : regions) {
        if (!region.selected || region.entries <= 0.0)
            continue;
        weight += region.entries;
        total += region.entries * region.hot_path_length;
    }
    return weight > 0.0 ? total / weight : 0.0;
}

RegionClass
EncoreReport::classOf(ir::RegionId id) const
{
    for (const RegionReport &region : regions) {
        if (region.id == id)
            return region.cls;
    }
    return RegionClass::Unknown;
}

namespace {

void
appendDouble(std::string &out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
    out += '\n';
}

} // namespace

std::string
EncoreReport::serialized() const
{
    std::string out;
    appendDouble(out, baseline_dyn_instrs);
    appendDouble(out, projected_overhead_instrs);
    for (const RegionReport &region : regions) {
        out += std::to_string(region.id);
        out += '|';
        out += region.function;
        out += '|';
        out += std::to_string(region.header);
        out += '|';
        out += std::to_string(region.num_blocks);
        out += '|';
        out += regionClassName(region.cls);
        out += '|';
        out += region.unknown_reason;
        out += '|';
        out += region.selected ? '1' : '0';
        out += '|';
        out += region.rejection_reason;
        out += '\n';
        appendDouble(out, region.entries);
        appendDouble(out, region.hot_path_length);
        appendDouble(out, region.dyn_instrs);
        appendDouble(out, region.overhead_instrs);
        out += std::to_string(region.static_mem_ckpts);
        out += '|';
        out += std::to_string(region.static_reg_ckpts);
        out += '\n';
        appendDouble(out, region.storage_bytes);
        appendDouble(out, region.storage_mem_bytes);
        appendDouble(out, region.storage_reg_bytes);
        appendDouble(out, region.static_storage_mem_bytes);
        appendDouble(out, region.static_storage_reg_bytes);
    }
    return out;
}

EncorePipeline::EncorePipeline(ir::Module &module, EncoreConfig config)
    : module_(module), config_(std::move(config))
{
}

EncorePipeline::~EncorePipeline() = default;

const interp::ProfileData &
EncorePipeline::profileData() const
{
    ENCORE_ASSERT(base_ != nullptr,
                  "profileData is only valid after run()");
    return base_->profile();
}

EncoreReport
EncorePipeline::run(const std::vector<RunSpec> &profile_runs)
{
    ENCORE_ASSERT(!ran_, "EncorePipeline::run may only be called once");
    ran_ = true;

    base_ = std::make_unique<AnalysisBase>(module_, profile_runs,
                                           config_.profile_max_instrs);
    ConfigAnalysis out = runConfig(*base_, config_);
    regions_ = std::move(out.regions);
    return out.report;
}

} // namespace encore
