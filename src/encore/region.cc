#include "encore/region.h"

#include "support/diagnostics.h"

namespace encore {

std::string
regionClassName(RegionClass cls)
{
    switch (cls) {
      case RegionClass::Idempotent:
        return "idempotent";
      case RegionClass::NonIdempotent:
        return "non-idempotent";
      case RegionClass::Unknown:
        return "unknown";
    }
    return "?";
}

std::vector<ir::BlockId>
Region::exitingBlocks() const
{
    ENCORE_ASSERT(func, "region without a function");
    std::vector<ir::BlockId> exits;
    for (const ir::BlockId id : blocks) {
        const ir::BasicBlock *bb = func->blockById(id);
        const auto succs = bb->successors();
        if (succs.empty()) {
            exits.push_back(id);
            continue;
        }
        for (const ir::BasicBlock *succ : succs) {
            if (!contains(succ->id())) {
                exits.push_back(id);
                break;
            }
        }
    }
    return exits;
}

std::size_t
Region::staticInstrCount() const
{
    std::size_t count = 0;
    for (const ir::BlockId id : blocks) {
        for (const auto &inst : func->blockById(id)->instructions()) {
            if (!inst.isPseudo())
                ++count;
        }
    }
    return count;
}

} // namespace encore
