/**
 * @file
 * SEME recovery regions and their classification.
 *
 * A region is a single-entry multiple-exit subgraph whose header
 * dominates every member block (§2.1). Encore's candidate regions come
 * from interval partitioning, which guarantees this property; the
 * struct here just carries the flattened membership plus bookkeeping
 * shared by the analysis, cost model and instrumenter.
 */
#ifndef ENCORE_ENCORE_REGION_H
#define ENCORE_ENCORE_REGION_H

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/memloc.h"
#include "ir/function.h"

namespace encore {

/// How the idempotence analysis classified a region (Figure 5).
enum class RegionClass
{
    Idempotent,    ///< No WAR hazard on any (live) path; free recovery.
    NonIdempotent, ///< Recoverable after selective checkpointing.
    Unknown,       ///< Analysis could not process the region (opaque
                   ///< calls, irreducible cycles, unbounded callee
                   ///< side effects).
};

std::string regionClassName(RegionClass cls);

struct Region
{
    const ir::Function *func = nullptr;
    ir::BlockId header = 0;
    /// Sorted member block ids; includes the header.
    std::vector<ir::BlockId> blocks;

    bool
    contains(ir::BlockId block) const
    {
        return std::binary_search(blocks.begin(), blocks.end(), block);
    }

    /// Blocks with an edge leaving the region or with no successors.
    std::vector<ir::BlockId> exitingBlocks() const;

    /// Static (non-pseudo) instruction count over the member blocks.
    std::size_t staticInstrCount() const;
};

/**
 * Result of the idempotence analysis over one region: classification,
 * the checkpoint plan (the CP set of §3.2), and diagnostics.
 */
struct IdempotenceResult
{
    RegionClass cls = RegionClass::Unknown;
    std::string unknown_reason;

    /// Stores that require a ckpt.mem immediately before them.
    std::vector<const ir::Instruction *> checkpoint_stores;

    /// Calls whose summarized side effects violate idempotence: each
    /// exact mod location is checkpointed just before the call.
    struct CallCheckpoint
    {
        const ir::Instruction *call;
        std::vector<analysis::MemLoc> mods;
    };
    std::vector<CallCheckpoint> checkpoint_calls;

    /// False when some offender cannot be checkpointed statically
    /// (e.g. a callee store to a statically unresolvable address); the
    /// region then cannot be instrumented and loses coverage.
    bool checkpointable = true;

    /// Diagnostic WAR pairs (exposed access origin, violating store).
    struct Violation
    {
        const ir::Instruction *exposed;
        const ir::Instruction *store;
    };
    std::vector<Violation> violations;

    bool
    isIdempotent() const
    {
        return cls == RegionClass::Idempotent;
    }

    /// Number of checkpoint instructions the plan would insert.
    std::size_t
    staticCheckpointCount() const
    {
        std::size_t count = checkpoint_stores.size();
        for (const auto &call : checkpoint_calls)
            count += call.mods.size();
        return count;
    }
};

} // namespace encore

#endif // ENCORE_ENCORE_REGION_H
