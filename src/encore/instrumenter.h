/**
 * @file
 * Code instrumentation for rollback recovery (paper §3.2).
 *
 * Protected regions receive:
 *   - `region.enter <id>` at the top of the header, publishing the
 *     region's recovery block to the runtime and opening a fresh
 *     checkpoint buffer (the paper's "store that updates a dedicated
 *     memory location with the address of the recovery block");
 *   - one `ckpt.reg` per live-in register overwritten in the region;
 *   - one `ckpt.mem` immediately before every store in the CP set and
 *     before every call with offending summarized side effects;
 *   - an (statically unreachable) recovery block `restore; jmp header`
 *     that the runtime jumps to when a fault is detected.
 *
 * Unprotected region headers receive a clearing `region.enter` so a
 * stale recovery target can never be used once control leaves a
 * protected region — the runtime analogue of invalidating the dedicated
 * memory location.
 */
#ifndef ENCORE_ENCORE_INSTRUMENTER_H
#define ENCORE_ENCORE_INSTRUMENTER_H

#include "encore/region_formation.h"

namespace encore {

/// A finalized region: candidate plus instrumentation artifacts.
struct InstrumentedRegion
{
    ir::RegionId id = ir::kInvalidRegion;
    CandidateRegion candidate;
    /// True when the region is instrumented for recovery.
    bool selected = false;
    /// Why an unselected region was rejected (diagnostics/report).
    std::string rejection_reason;
    std::vector<ir::RegId> reg_ckpts;
    const ir::BasicBlock *recovery_block = nullptr;
};

/**
 * Applies instrumentation for all of a function's regions. `liveness`
 * must have been computed before any instruction was inserted.
 */
void instrumentFunction(ir::Function &func,
                        const std::vector<InstrumentedRegion *> &regions,
                        const analysis::Liveness &liveness);

} // namespace encore

#endif // ENCORE_ENCORE_INSTRUMENTER_H
