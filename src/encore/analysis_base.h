/**
 * @file
 * Shared analysis state for configuration sweeps.
 *
 * The Encore pipeline naturally splits into an expensive, config-
 * independent part and a cheap, config-dependent part:
 *
 *   AnalysisBase   — module checks, profiling runs, alias analyses and
 *                    the per-function CFG structures (dominators,
 *                    loops, intervals, liveness). Pure functions of
 *                    the module and the profiling runs; computed once
 *                    per workload and shared read-only across every
 *                    config point and every thread.
 *
 *   AnalysisCache  — memoized config-dependent artifacts, layered by
 *                    what invalidates them:
 *                      * call summaries, keyed (alias_mode,
 *                        opaque_functions);
 *                      * an idempotence-analysis variant, keyed
 *                        (alias_mode, opaque_functions,
 *                        use_call_summaries, effective pmin);
 *                      * per-region dataflow + cost results inside
 *                        each variant, keyed (function, header,
 *                        block set).
 *
 *   analyzeConfig  — region formation, γ selection, budget auto-tune
 *                    and report building for one EncoreConfig. Always
 *                    recomputed (γ/η/budget sweeps are pure selection
 *                    changes); does not mutate the module, so a sweep
 *                    can evaluate any number of configs against one
 *                    AnalysisBase.
 *
 *   runConfig      — analyzeConfig plus instrumentation. Mutates the
 *                    module (once per module, like EncorePipeline).
 *
 * Determinism: every cached value is a pure function of its key, and
 * region analysis itself is lookup-only over state interned before any
 * parallelism starts, so reports are bit-identical with or without the
 * cache and at any thread count.
 */
#ifndef ENCORE_ENCORE_ANALYSIS_BASE_H
#define ENCORE_ENCORE_ANALYSIS_BASE_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "encore/pipeline.h"
#include "encore/region_formation.h"

namespace encore {

class ThreadPool;

/// Wall-clock seconds per pipeline phase, accumulated across calls.
struct AnalysisPhaseTimings
{
    double profile = 0.0;     ///< Profiling interpreter runs.
    double structures = 0.0;  ///< Alias analyses + CFG structures.
    double formation = 0.0;   ///< Region formation minus dataflow.
    double dataflow = 0.0;    ///< Idempotence dataflow + cost model.
    double select_merge = 0.0; ///< γ selection, auto-tune, report.
    double instrument = 0.0;  ///< Instruction insertion + verify.

    void
    accumulate(const AnalysisPhaseTimings &other)
    {
        profile += other.profile;
        structures += other.structures;
        formation += other.formation;
        dataflow += other.dataflow;
        select_merge += other.select_merge;
        instrument += other.instrument;
    }
};

/**
 * The immutable, config-independent analysis state of one workload.
 * Construction profiles the module and builds every shared structure;
 * afterwards the object is read-only (the context cache and memoized
 * alias queries mutate internally under their own locks) and safe to
 * share across threads.
 *
 * `jobs` sizes the internal thread pool used for the parallel
 * context warm-up and for per-function region formation in
 * analyzeConfig (1 = fully sequential; 0 = hardware concurrency).
 * Results are identical for every value.
 */
class AnalysisBase
{
  public:
    AnalysisBase(ir::Module &module,
                 const std::vector<RunSpec> &profile_runs,
                 std::uint64_t profile_max_instrs, std::size_t jobs = 1);
    ~AnalysisBase();

    AnalysisBase(const AnalysisBase &) = delete;
    AnalysisBase &operator=(const AnalysisBase &) = delete;

    /// The analyzed module. Non-const: runConfig instruments it.
    ir::Module &module() const { return module_; }

    const interp::ProfileData &profile() const { return profile_; }

    const analysis::DynamicAddressProfile &
    addrProfile() const
    {
        return addr_profile_;
    }

    const analysis::AliasAnalysis &alias(EncoreConfig::AliasMode mode) const;

    FunctionContextCache &contexts() const { return contexts_; }

    ThreadPool &pool() const { return *pool_; }

    /// Seconds spent profiling / building shared structures.
    const AnalysisPhaseTimings &setupTimings() const { return timings_; }

  private:
    ir::Module &module_;
    interp::ProfileData profile_;
    analysis::DynamicAddressProfile addr_profile_;
    std::unique_ptr<analysis::StaticAliasAnalysis> static_aa_;
    std::unique_ptr<analysis::ProfileGuidedAliasAnalysis> optimistic_aa_;
    mutable FunctionContextCache contexts_;
    mutable std::unique_ptr<ThreadPool> pool_;
    AnalysisPhaseTimings timings_;
};

/**
 * Thread-safe memo of config-dependent analysis artifacts over one
 * AnalysisBase. Sharing a cache across sweep points makes repeated
 * configs (γ/η/budget changes, or re-evaluating a config) reuse the
 * per-region dataflow results; distinct (alias_mode, opaque,
 * use_call_summaries, pmin) tuples get distinct variants and never
 * contaminate each other.
 */
class AnalysisCache
{
  public:
    explicit AnalysisCache(const AnalysisBase &base) : base_(base) {}

    struct Stats
    {
        std::size_t variants = 0;
        std::size_t region_evals = 0; ///< Dataflow runs (cache misses).
        std::size_t region_hits = 0;  ///< Memoized region lookups.
    };
    Stats stats() const;

    // --- implementation detail (used by analyzeConfig) -----------------
    struct RegionKey
    {
        const ir::Function *func = nullptr;
        ir::BlockId header = 0;
        std::vector<ir::BlockId> blocks;

        bool
        operator==(const RegionKey &other) const
        {
            return func == other.func && header == other.header &&
                   blocks == other.blocks;
        }
    };

    struct RegionKeyHash
    {
        std::size_t operator()(const RegionKey &key) const;
    };

    struct CachedRegion
    {
        IdempotenceResult analysis;
        RegionCost cost;
    };

    /// One idempotence-analysis variant plus its per-region memo. The
    /// mutex serializes analyzeRegion (the analysis instance is not
    /// internally synchronized) and guards the memo.
    struct Variant
    {
        std::unique_ptr<IdempotenceAnalysis> idem;
        std::unordered_map<RegionKey, CachedRegion, RegionKeyHash> regions;
        std::mutex mutex;
    };

    /// Finds or builds the variant for a config (thread-safe).
    Variant &variant(const EncoreConfig &config);

    std::atomic<std::size_t> region_evals_{0};
    std::atomic<std::size_t> region_hits_{0};

  private:
    using SummariesKey = std::pair<int, std::string>;
    using VariantKey = std::tuple<int, std::string, bool, double>;

    const AnalysisBase &base_;
    mutable std::mutex mutex_;
    std::map<SummariesKey, std::unique_ptr<CallSummaries>> summaries_;
    std::map<VariantKey, std::unique_ptr<Variant>> variants_;
};

/// The analysis-side outcome of one config point: the figure-ready
/// report plus the formed regions with their selection decisions
/// (region ids assigned, instrumentation not yet applied).
struct ConfigAnalysis
{
    EncoreReport report;
    std::vector<InstrumentedRegion> regions;
};

/**
 * Evaluates one config point against a shared base: region formation,
 * γ selection, budget auto-tune and the report. Never mutates the
 * module. With `cache` null every region is analyzed directly
 * (equivalent to --no-analysis-cache); timings, when non-null,
 * accumulate the phase costs of this call.
 */
ConfigAnalysis analyzeConfig(const AnalysisBase &base,
                             const EncoreConfig &config,
                             AnalysisCache *cache = nullptr,
                             AnalysisPhaseTimings *timings = nullptr);

/**
 * analyzeConfig plus instrumentation of the module (recovery
 * pseudo-ops for the selected regions). Like EncorePipeline::run this
 * may only be applied once per module.
 */
ConfigAnalysis runConfig(const AnalysisBase &base,
                         const EncoreConfig &config,
                         AnalysisCache *cache = nullptr,
                         AnalysisPhaseTimings *timings = nullptr);

} // namespace encore

#endif // ENCORE_ENCORE_ANALYSIS_BASE_H
