/**
 * @file
 * The Encore idempotence analysis (paper §3.1).
 *
 * For a SEME region the analysis computes, per node of a condensed
 * acyclic view of the region:
 *
 *   RS  — reachable stores (Equation 1, forward post-order),
 *   GA  — guarded addresses (Equation 2, reverse traversal, must-set),
 *   EA  — exposed addresses (Equation 3, reverse traversal),
 *
 * and flags a violation wherever EA ∩ RS ≠ ∅ under may-alias
 * (Equation 4). The stores named by the violating RS entries form the
 * CP checkpoint set of §3.2.
 *
 * Cycles are handled hierarchically (§3.1.2): every natural loop is
 * summarized bottom-up — RS^l = AS^l (all stores, capturing
 * cross-iteration WARs), GA^l = the must-written set at its exits,
 * EA^l = the union of exposed addresses at its exits — and the loop
 * then participates in enclosing analyses as a single pseudo-block.
 * Cycles that are not natural loops cannot be canonicalized and leave
 * the region Unknown, as do calls the CallSummaries cannot analyze.
 *
 * Profile-driven pruning (§3.4.1): with pmin >= 0, blocks whose
 * execution probability is zero (pmin == 0, the paper's "never executed
 * while profiling" point) or below pmin are excluded from the child
 * sets of every equation — trading a statistical sliver of soundness
 * for substantially more idempotence, exactly the Figure 5 experiment.
 *
 * Implementation note: construction runs a deterministic pre-pass that
 * interns every location/entry the dataflow can ever see (per-block
 * access events, call-summary mod/ref sets anchored at their call
 * sites) into dense u32 IDs — see analysis/interning.h. The RS/GA/EA
 * sets are then IdSets with linear merges, may-alias queries are
 * memoized per location/entry pair, and region analysis itself is
 * lookup-only, so results are bit-reproducible regardless of the order
 * regions are analyzed in.
 */
#ifndef ENCORE_ENCORE_IDEMPOTENCE_H
#define ENCORE_ENCORE_IDEMPOTENCE_H

#include <memory>
#include <mutex>
#include <unordered_map>

#include "analysis/alias.h"
#include "analysis/interning.h"
#include "analysis/intervals.h"
#include "analysis/liveness.h"
#include "analysis/loop_info.h"
#include "encore/call_summary.h"
#include "encore/region.h"
#include "interp/profile.h"

namespace encore {

/// Cached per-function CFG structures, shared by the idempotence
/// analysis, region formation (intervals) and instrumentation
/// (liveness). Pure functions of the (pristine) function body.
struct FunctionContext
{
    analysis::DiGraph cfg;
    analysis::DominatorTree dom;
    analysis::LoopInfo loops;
    analysis::IntervalHierarchy intervals;
    analysis::Liveness liveness;

    explicit FunctionContext(const ir::Function &func)
        : cfg(analysis::buildCfg(func)),
          dom(cfg, func.entry()->id()),
          loops(cfg, dom),
          intervals(cfg, func.entry()->id()),
          liveness(func)
    {
    }
};

/**
 * Lazily-built per-function context cache. One instance can be shared
 * read-mostly across every analysis variant of a workload (the contexts
 * depend only on the module, not on any EncoreConfig field); get() is
 * thread-safe.
 */
class FunctionContextCache
{
  public:
    const FunctionContext &get(const ir::Function &func);

    /// Pre-inserts a context built elsewhere (parallel warm-up);
    /// no-op when the function already has one.
    void put(const ir::Function &func,
             std::unique_ptr<FunctionContext> ctx);

  private:
    std::mutex mutex_;
    std::unordered_map<const ir::Function *,
                       std::unique_ptr<FunctionContext>>
        contexts_;
};

class IdempotenceAnalysis
{
  public:
    /// Backwards-compatible alias — the context type used to be nested
    /// here before it was shared across analysis variants.
    using FunctionContext = encore::FunctionContext;

    struct Options
    {
        /// Execution-probability threshold for pruning; negative means
        /// the paper's ∅ column (no pruning). 0.0 prunes only blocks
        /// never executed during profiling.
        double pmin = -1.0;
        /// When false, any call with side effects makes the region
        /// Unknown (the paper's behaviour); when true, analyzable
        /// callees participate through their mod/ref summaries.
        bool use_call_summaries = true;
    };

    /// `profile` may be null, in which case no pruning happens
    /// regardless of pmin. `shared_contexts` (optional) supplies the
    /// per-function CFG structures so several analysis variants over
    /// one module can share them; when null a private cache is used.
    /// Instances are not internally synchronized: concurrent
    /// analyzeRegion calls on one instance must be serialized by the
    /// caller (AnalysisCache does).
    IdempotenceAnalysis(const ir::Module &module,
                        const analysis::AliasAnalysis &aa,
                        const CallSummaries &summaries,
                        const interp::ProfileData *profile,
                        Options options,
                        FunctionContextCache *shared_contexts = nullptr);

    ~IdempotenceAnalysis();

    IdempotenceResult analyzeRegion(const Region &region);

    const FunctionContext &context(const ir::Function &func);

    const Options &options() const { return options_; }

    const analysis::LocationInterner &interner() const { return interner_; }

    /// Memoized pair queries answered so far (diagnostics).
    std::size_t aliasCacheSize() const { return filter_.cacheSize(); }

  private:
    struct LoopSummaryData;
    struct Subgraph;

    /// Per-block access events, precomputed by the interning pre-pass.
    struct Event
    {
        enum class Kind : std::uint8_t
        {
            Load,
            Store,
            Call
        };
        Kind kind;
        analysis::EntryId entry = analysis::kInvalidInternId;
        analysis::GuardId guard = analysis::kInvalidInternId;
        std::uint32_t call = 0; ///< Index into call_sites_ (Kind::Call).
    };

    /// A call site with its summary pre-resolved against the options.
    struct CallSite
    {
        bool ok = true;
        std::string fail_reason;
        /// Callee ref entries anchored at the call: (entry, guard of
        /// the underlying location), in summary order.
        std::vector<std::pair<analysis::EntryId, analysis::GuardId>> refs;
        /// Callee mod entries anchored at the call.
        analysis::IdSet mods;
    };

    const LoopSummaryData &loopSummary(const ir::Function &func,
                                       const analysis::Loop *loop);

    /// Shared worker: runs the RS/GA/EA equations over the subgraph
    /// (`loop_mode` applies the RS^l = AS^l rule and drops back edges).
    void analyzeSubgraph(Subgraph &sub);

    /// Builds the condensed node view for a block set.
    std::unique_ptr<Subgraph> buildSubgraph(const ir::Function &func,
                                            ir::BlockId header,
                                            const std::vector<ir::BlockId>
                                                &blocks,
                                            bool loop_mode);

    void internModule();

    const ir::Module &module_;
    const analysis::AliasAnalysis &aa_;
    const CallSummaries &summaries_;
    const interp::ProfileData *profile_;
    Options options_;

    analysis::LocationInterner interner_;
    analysis::AliasFilter filter_;
    /// Per function, per block id: the interned access events.
    std::unordered_map<const ir::Function *, std::vector<std::vector<Event>>>
        block_events_;
    std::vector<CallSite> call_sites_;

    FunctionContextCache *contexts_;
    FunctionContextCache own_contexts_;
    std::unordered_map<const analysis::Loop *,
                       std::unique_ptr<LoopSummaryData>>
        loop_summaries_;
};

} // namespace encore

#endif // ENCORE_ENCORE_IDEMPOTENCE_H
