/**
 * @file
 * The Encore idempotence analysis (paper §3.1).
 *
 * For a SEME region the analysis computes, per node of a condensed
 * acyclic view of the region:
 *
 *   RS  — reachable stores (Equation 1, forward post-order),
 *   GA  — guarded addresses (Equation 2, reverse traversal, must-set),
 *   EA  — exposed addresses (Equation 3, reverse traversal),
 *
 * and flags a violation wherever EA ∩ RS ≠ ∅ under may-alias
 * (Equation 4). The stores named by the violating RS entries form the
 * CP checkpoint set of §3.2.
 *
 * Cycles are handled hierarchically (§3.1.2): every natural loop is
 * summarized bottom-up — RS^l = AS^l (all stores, capturing
 * cross-iteration WARs), GA^l = the must-written set at its exits,
 * EA^l = the union of exposed addresses at its exits — and the loop
 * then participates in enclosing analyses as a single pseudo-block.
 * Cycles that are not natural loops cannot be canonicalized and leave
 * the region Unknown, as do calls the CallSummaries cannot analyze.
 *
 * Profile-driven pruning (§3.4.1): with pmin >= 0, blocks whose
 * execution probability is zero (pmin == 0, the paper's "never executed
 * while profiling" point) or below pmin are excluded from the child
 * sets of every equation — trading a statistical sliver of soundness
 * for substantially more idempotence, exactly the Figure 5 experiment.
 */
#ifndef ENCORE_ENCORE_IDEMPOTENCE_H
#define ENCORE_ENCORE_IDEMPOTENCE_H

#include <map>
#include <memory>

#include "analysis/alias.h"
#include "analysis/intervals.h"
#include "analysis/loop_info.h"
#include "encore/call_summary.h"
#include "encore/region.h"
#include "interp/profile.h"

namespace encore {

class IdempotenceAnalysis
{
  public:
    struct Options
    {
        /// Execution-probability threshold for pruning; negative means
        /// the paper's ∅ column (no pruning). 0.0 prunes only blocks
        /// never executed during profiling.
        double pmin = -1.0;
        /// When false, any call with side effects makes the region
        /// Unknown (the paper's behaviour); when true, analyzable
        /// callees participate through their mod/ref summaries.
        bool use_call_summaries = true;
    };

    /// `profile` may be null, in which case no pruning happens
    /// regardless of pmin.
    IdempotenceAnalysis(const ir::Module &module,
                        const analysis::AliasAnalysis &aa,
                        const CallSummaries &summaries,
                        const interp::ProfileData *profile,
                        Options options);

    ~IdempotenceAnalysis();

    IdempotenceResult analyzeRegion(const Region &region);

    /// Cached per-function CFG structures, exposed for reuse by region
    /// formation.
    struct FunctionContext
    {
        analysis::DiGraph cfg;
        analysis::DominatorTree dom;
        analysis::LoopInfo loops;

        explicit FunctionContext(const ir::Function &func)
            : cfg(analysis::buildCfg(func)),
              dom(cfg, func.entry()->id()),
              loops(cfg, dom)
        {
        }
    };

    const FunctionContext &context(const ir::Function &func);

    const Options &options() const { return options_; }

  private:
    struct LoopSummaryData;
    struct Subgraph;

    const LoopSummaryData &loopSummary(const ir::Function &func,
                                       const analysis::Loop *loop);

    /// Shared worker: runs the RS/GA/EA equations over the subgraph
    /// (`loop_mode` applies the RS^l = AS^l rule and drops back edges).
    void analyzeSubgraph(Subgraph &sub) const;

    /// Builds the condensed node view for a block set.
    std::unique_ptr<Subgraph> buildSubgraph(const ir::Function &func,
                                            ir::BlockId header,
                                            const std::vector<ir::BlockId>
                                                &blocks,
                                            bool loop_mode);

    const ir::Module &module_;
    const analysis::AliasAnalysis &aa_;
    const CallSummaries &summaries_;
    const interp::ProfileData *profile_;
    Options options_;

    std::map<const ir::Function *, std::unique_ptr<FunctionContext>>
        contexts_;
    std::map<const analysis::Loop *, std::unique_ptr<LoopSummaryData>>
        loop_summaries_;
};

} // namespace encore

#endif // ENCORE_ENCORE_IDEMPOTENCE_H
