#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "support/rng.h"

namespace encore::fault::models {

// Stable numeric identity for a fault model. These values are written
// into trial-store headers and wire-protocol CampaignSpecs, so they are
// part of the durable format: never renumber, only append.
enum class FaultModelId : std::uint32_t {
  RegBit = 0,
  MultiBit = 1,
  CfBranch = 2,
  MemBus = 3,
};

enum class DetectorId : std::uint32_t {
  Analytic = 0,
  Replay = 1,
};

// A fully drawn per-trial injection plan. All models anchor their strike
// on a *value-instruction index* (the same counter the golden run and the
// snapshot tier index by), so snapshot seek stays valid for every model:
// the prefix before the anchor is bit-identical to the golden run.
struct InjectionPlan {
  enum class Kind : std::uint8_t {
    // Flip xor_mask bits in the destination of value instruction
    // target_value_index (the classic Encore model, and multi-bit).
    RegFlip,
    // At the first taken branch/jump executed after the anchor, redirect
    // control to a wrong same-function block chosen by selector.
    BranchRedirect,
    // At the first load/store executed after the anchor, corrupt either
    // the data word or the (pre-validation) address, per selector.
    MemBus,
  };
  Kind kind = Kind::RegFlip;
  std::uint64_t target_value_index = 0;
  std::uint64_t xor_mask = 0;  // RegFlip: destination bits to flip.
  std::uint64_t selector = 0;  // BranchRedirect/MemBus: site-resolved draw.
};

// A fully drawn per-trial detection plan.
struct DetectionPlan {
  enum class Kind : std::uint8_t {
    // Detection fires `latency` dynamic instructions after injection (or
    // earlier if the fault turns symptomatic) — the analytical Dmax model.
    Latency,
    // RepTFD-style replay detection: execution is checked at absolute
    // dyn-instruction window boundaries (multiples of `window`); a window
    // whose replay diff comes back dirty is charged `window` (or the
    // partial window on a hard error) replayed instructions.
    ReplayWindow,
  };
  Kind kind = Kind::Latency;
  std::uint64_t latency = 0;
  std::uint64_t window = 0;
};

// A fault model draws an injection plan for one trial. Determinism
// contract: draw() must consume Rng draws as a pure function of the Rng
// state and `value_instrs` — never of global or per-run state — so that
// counter-seeded trials (Rng::forStream(seed, trial)) are bit-identical
// at any --jobs and across kill→resume / shard+merge.
class FaultModel {
 public:
  virtual ~FaultModel() = default;
  virtual std::string_view name() const = 0;
  virtual FaultModelId id() const = 0;
  virtual std::string_view description() const = 0;
  virtual InjectionPlan draw(Rng &rng, std::uint64_t value_instrs) const = 0;
  // True when the strike site is exactly the anchored value instruction
  // (reg-bit, multi-bit). False when the strike drifts to the next
  // matching site after the anchor (cf-branch, mem-bus) — such models
  // cannot be attributed to planner groups by anchor, so compositional
  // sidecar reuse is refused for them.
  virtual bool anchoredStrike() const { return true; }
  // True when the model needs the interpreter's unfused dispatch path
  // (per-instruction branch/memory filter hooks have no fused variants).
  virtual bool needsUnfusedDispatch() const { return false; }
};

// A detector draws a detection plan for one trial. Same determinism
// contract as FaultModel::draw.
class Detector {
 public:
  virtual ~Detector() = default;
  virtual std::string_view name() const = 0;
  virtual DetectorId id() const = 0;
  virtual std::string_view description() const = 0;
  virtual DetectionPlan draw(Rng &rng, std::uint64_t dmax) const = 0;
  // True when trials under this detector accrue replay cost that should
  // surface in aggregates (the replay detector).
  virtual bool reportsReplayCost() const { return false; }
};

// Registry lookups. All return pointers to stateless singletons with
// static storage duration; nullptr on unknown name/id.
const FaultModel *findFaultModel(std::string_view name);
const FaultModel *faultModelById(std::uint32_t id);
const Detector *findDetector(std::string_view name);
const Detector *detectorById(std::uint32_t id);

// The pre-subsystem defaults: single-bit register flip under the
// analytical Dmax detector.
const FaultModel *defaultFaultModel();
const Detector *defaultDetector();

// Registered names in registry order, for CLI error messages.
std::vector<std::string_view> faultModelNames();
std::vector<std::string_view> detectorNames();

}  // namespace encore::fault::models
