#include "fault/models/fault_model.h"

#include <array>

namespace encore::fault::models {
namespace {

// --- Fault models ---------------------------------------------------------

class RegBitModel final : public FaultModel {
 public:
  std::string_view name() const override { return "reg-bit"; }
  FaultModelId id() const override { return FaultModelId::RegBit; }
  std::string_view description() const override {
    return "single bit flip in one value instruction's destination";
  }
  InjectionPlan draw(Rng &rng, std::uint64_t value_instrs) const override {
    // Draw order (target, then bit) matches the pre-registry injector so
    // the default scenario stays byte-identical to historical campaigns.
    InjectionPlan plan;
    plan.kind = InjectionPlan::Kind::RegFlip;
    plan.target_value_index = rng.below(value_instrs);
    plan.xor_mask = 1ULL << rng.below(64);
    return plan;
  }
};

class MultiBitModel final : public FaultModel {
 public:
  std::string_view name() const override { return "multi-bit"; }
  FaultModelId id() const override { return FaultModelId::MultiBit; }
  std::string_view description() const override {
    return "2-4 adjacent bit flips in one destination";
  }
  InjectionPlan draw(Rng &rng, std::uint64_t value_instrs) const override {
    InjectionPlan plan;
    plan.kind = InjectionPlan::Kind::RegFlip;
    plan.target_value_index = rng.below(value_instrs);
    const std::uint64_t width = 2 + rng.below(3);  // 2..4 adjacent bits
    const std::uint64_t start = rng.below(65 - width);
    plan.xor_mask = ((1ULL << width) - 1) << start;
    return plan;
  }
};

class CfBranchModel final : public FaultModel {
 public:
  std::string_view name() const override { return "cf-branch"; }
  FaultModelId id() const override { return FaultModelId::CfBranch; }
  std::string_view description() const override {
    return "redirect a taken branch to a wrong same-function block";
  }
  InjectionPlan draw(Rng &rng, std::uint64_t value_instrs) const override {
    // The anchor is a value-instruction index; the strike happens at the
    // first branch/jump executed after it. The selector picks the wrong
    // block at the strike site (modulo the function's block count there).
    InjectionPlan plan;
    plan.kind = InjectionPlan::Kind::BranchRedirect;
    plan.target_value_index = rng.below(value_instrs);
    plan.selector = rng();
    return plan;
  }
  bool anchoredStrike() const override { return false; }
  bool needsUnfusedDispatch() const override { return true; }
};

class MemBusModel final : public FaultModel {
 public:
  std::string_view name() const override { return "mem-bus"; }
  FaultModelId id() const override { return FaultModelId::MemBus; }
  std::string_view description() const override {
    return "flip a bit in a loaded/stored word or its pre-validation address";
  }
  InjectionPlan draw(Rng &rng, std::uint64_t value_instrs) const override {
    // Selector encoding, resolved at the first load/store after the
    // anchor: bit 0 chooses address (1) vs data (0) fault; bits 1..6 give
    // the bit index (&31 for the 32-bit word offset, 0..63 for data).
    InjectionPlan plan;
    plan.kind = InjectionPlan::Kind::MemBus;
    plan.target_value_index = rng.below(value_instrs);
    plan.selector = rng();
    return plan;
  }
  bool anchoredStrike() const override { return false; }
  bool needsUnfusedDispatch() const override { return true; }
};

// --- Detectors ------------------------------------------------------------

class AnalyticDetector final : public Detector {
 public:
  std::string_view name() const override { return "analytic"; }
  DetectorId id() const override { return DetectorId::Analytic; }
  std::string_view description() const override {
    return "uniform-latency analytical Dmax detection";
  }
  DetectionPlan draw(Rng &rng, std::uint64_t dmax) const override {
    DetectionPlan plan;
    plan.kind = DetectionPlan::Kind::Latency;
    plan.latency = dmax == 0 ? 0 : rng.below(dmax + 1);
    return plan;
  }
};

class ReplayDetector final : public Detector {
 public:
  std::string_view name() const override { return "replay"; }
  DetectorId id() const override { return DetectorId::Replay; }
  std::string_view description() const override {
    return "RepTFD-style windowed replay-and-diff detection";
  }
  DetectionPlan draw(Rng &, std::uint64_t dmax) const override {
    // Draws nothing: the window is the configured Dmax, and the detection
    // point is the next absolute window boundary after injection. Keeping
    // the Rng untouched means trial alignment with the analytic detector
    // is broken only by the detector's own identity, not by draw skew.
    DetectionPlan plan;
    plan.kind = DetectionPlan::Kind::ReplayWindow;
    plan.window = dmax == 0 ? 1 : dmax;
    return plan;
  }
  bool reportsReplayCost() const override { return true; }
};

const RegBitModel kRegBit;
const MultiBitModel kMultiBit;
const CfBranchModel kCfBranch;
const MemBusModel kMemBus;
const AnalyticDetector kAnalytic;
const ReplayDetector kReplay;

constexpr std::array<const FaultModel *, 4> kFaultModels = {
    &kRegBit, &kMultiBit, &kCfBranch, &kMemBus};
constexpr std::array<const Detector *, 2> kDetectors = {&kAnalytic, &kReplay};

}  // namespace

const FaultModel *findFaultModel(std::string_view name) {
  for (const FaultModel *model : kFaultModels)
    if (model->name() == name) return model;
  return nullptr;
}

const FaultModel *faultModelById(std::uint32_t id) {
  for (const FaultModel *model : kFaultModels)
    if (static_cast<std::uint32_t>(model->id()) == id) return model;
  return nullptr;
}

const Detector *findDetector(std::string_view name) {
  for (const Detector *detector : kDetectors)
    if (detector->name() == name) return detector;
  return nullptr;
}

const Detector *detectorById(std::uint32_t id) {
  for (const Detector *detector : kDetectors)
    if (static_cast<std::uint32_t>(detector->id()) == id) return detector;
  return nullptr;
}

const FaultModel *defaultFaultModel() { return &kRegBit; }
const Detector *defaultDetector() { return &kAnalytic; }

std::vector<std::string_view> faultModelNames() {
  std::vector<std::string_view> names;
  for (const FaultModel *model : kFaultModels) names.push_back(model->name());
  return names;
}

std::vector<std::string_view> detectorNames() {
  std::vector<std::string_view> names;
  for (const Detector *detector : kDetectors)
    names.push_back(detector->name());
  return names;
}

}  // namespace encore::fault::models
