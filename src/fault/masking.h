/**
 * @file
 * Hardware masking model.
 *
 * The paper measured an average hardware masking rate of 91% by Monte
 * Carlo fault injection on a Verilog model of an ARM926 (§4, §5.4).
 * That per-gate experiment contributes a single scalar to the coverage
 * figures, so it is substituted here by a Bernoulli draw with a
 * configurable rate (documented in DESIGN.md).
 */
#ifndef ENCORE_FAULT_MASKING_H
#define ENCORE_FAULT_MASKING_H

#include "support/rng.h"

namespace encore::fault {

class MaskingModel
{
  public:
    /// `rate` is the probability a raw transient fault is masked by
    /// the hardware before becoming architecturally visible.
    explicit MaskingModel(double rate = kArm926Rate) : rate_(rate) {}

    bool
    isMasked(Rng &rng) const
    {
        return rng.chance(rate_);
    }

    double rate() const { return rate_; }

    /// Average masking rate the paper reports for the ARM926 model.
    static constexpr double kArm926Rate = 0.91;

  private:
    double rate_;
};

} // namespace encore::fault

#endif // ENCORE_FAULT_MASKING_H
