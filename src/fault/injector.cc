#include "fault/injector.h"

#include <memory>
#include <set>

#include "ir/printer.h"
#include "support/checksum.h"
#include "support/diagnostics.h"
#include "support/thread_pool.h"

namespace encore::fault {

std::string_view
outcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::Masked:
        return "masked";
      case FaultOutcome::RecoveredIdempotent:
        return "recovered-idempotent";
      case FaultOutcome::RecoveredCheckpoint:
        return "recovered-checkpoint";
      case FaultOutcome::NotRecoverable:
        return "not-recoverable";
      case FaultOutcome::RecoveryFailed:
        return "recovery-failed";
      case FaultOutcome::Benign:
        return "benign";
      case FaultOutcome::SilentCorruption:
        return "silent-corruption";
      default:
        return "?";
    }
}

void
validateCampaignConfig(const CampaignConfig &config)
{
    if (config.trials == 0)
        fatal("campaign config: trials must be > 0");
    if (!(config.masking_rate >= 0.0 && config.masking_rate <= 1.0))
        fatalf("campaign config: masking_rate must be in [0, 1], got ",
               config.masking_rate);
    if (!(config.trial.run_budget_factor >= 1.0))
        fatalf("campaign config: run_budget_factor must be >= 1 (the "
               "faulty run needs at least the golden run's budget), "
               "got ",
               config.trial.run_budget_factor);
    if (config.trial.dmax == 0)
        fatal("campaign config: dmax must be > 0 dynamic instructions");
}

namespace {

/**
 * The per-trial hook: executes one drawn InjectionPlan (register-bit
 * flips at a chosen value-producing instruction, a redirected branch,
 * or a memory-bus fault at the first load/store past the anchor), then
 * fires detection per the drawn DetectionPlan — after a latency under
 * the analytical detector, or at the next absolute window boundary
 * under the replay detector.
 *
 * The hook also tracks the corruption's dataflow (registers within the
 * current activation plus memory words written with tainted data).
 * Under the analytical detector, when a tainted value is about to
 * steer a branch or address a memory access, detection fires
 * immediately — the paper's §4.3 assumption that control and address
 * faults exhibit highly visible symptoms and are "typically detected
 * before they propagate to memory and/or divert control flow". The
 * replay detector instead lets symptoms run (latching a sticky
 * divergence flag) until its window's replay-and-diff would expose
 * them. Runtime errors (wild pointers, division by zero) are treated
 * as immediate symptoms under both.
 */
class TrialHooks : public interp::ExecHooks
{
  public:
    /// `start_value_index` is the value-instruction count already
    /// executed before these hooks see their first filterResult — 0
    /// for a full run, the snapshot's value_count when the trial
    /// resumes from a prefix snapshot. Pre-injection the hooks are
    /// pure pass-throughs, so skipping the prefix callbacks changes
    /// nothing except where the internal counter starts. (Every model
    /// anchors on a value index, so this holds for all of them: a
    /// branch/memory strike happens at the first matching site *after*
    /// the anchor value instruction executes.)
    TrialHooks(interp::Interpreter &interp,
               const models::InjectionPlan &plan,
               const models::DetectionPlan &detection,
               std::uint64_t start_value_index)
        : interp_(interp),
          plan_(plan),
          detection_(detection),
          value_count_(start_value_index)
    {
    }

    bool
    needsUnfusedDispatch() const override
    {
        // Branch/memory strikes ride on filter points that exist only
        // in the unfused handlers.
        return plan_.kind != models::InjectionPlan::Kind::RegFlip;
    }

    std::uint64_t
    filterResult(const ir::Instruction &inst, std::uint64_t dyn_index,
                 std::uint64_t value) override
    {
        const std::uint64_t my_value_index = value_count_++;
        if (!injected_) {
            if (plan_.kind != models::InjectionPlan::Kind::RegFlip ||
                my_value_index != plan_.target_value_index) {
                current_load_tainted_ = false;
                return value;
            }
            markInjected(dyn_index);
            if (inst.hasDest())
                taintReg(inst.dest());
            current_load_tainted_ = false;
            return value ^ plan_.xor_mask;
        }

        // Taint propagation: the destination is corrupt when any
        // register source is, or (for loads) when the loaded word was
        // written with tainted data. When no register taint is live and
        // the load was clean, nothing can propagate and the dest
        // untaint is a no-op — skip the operand walk entirely. This is
        // the steady state for the whole post-rollback tail of a trial.
        if (tainted_regs_.empty() && !current_load_tainted_)
            return value;
        if (inst.hasDest()) {
            bool src_tainted = current_load_tainted_;
            const int n = ir::opcodeNumOperands(inst.opcode());
            for (int i = 0; i < n; ++i) {
                const ir::Operand &op =
                    i == 0 ? inst.a() : i == 1 ? inst.b() : inst.c();
                if (op.isReg() && regTainted(op.reg))
                    src_tainted = true;
            }
            if (src_tainted)
                taintReg(inst.dest());
            else
                untaintReg(inst.dest());
        }
        current_load_tainted_ = false;
        return value;
    }

    bool
    shouldTriggerDetection(const ir::Instruction &next,
                           std::uint64_t dyn_index) override
    {
        if (!injected_ || detected_)
            return false;
        if (detection_.kind ==
            models::DetectionPlan::Kind::ReplayWindow) {
            // Replay detection has no symptom channel: errors run
            // free (latching the divergence flag) until the window's
            // replay-and-diff would expose them at the boundary.
            if (dyn_index < detect_at_) {
                if (!diverged_ && isSymptomatic(next))
                    diverged_ = true;
                return false;
            }
            const bool visible = diverged_ || !tainted_regs_.empty() ||
                                 !tainted_words_.empty() ||
                                 current_load_tainted_;
            if (!visible) {
                // A clean diff: no taint anywhere and control never
                // diverged, so no later window can turn dirty either —
                // stand the watch down. (Cost model: a cheap signature
                // compare flags the window; the full replay+diff — the
                // cost charged below — runs only on a mismatch, so a
                // clean window charges nothing.)
                detect_at_ = ~0ULL;
                return false;
            }
            replay_cost_ += detection_.window;
            noteDetectionPoint();
            return true;
        }
        if (dyn_index < detect_at_ && !isSymptomatic(next))
            return false;
        noteDetectionPoint();
        return true;
    }

    void
    filterBranchTarget(const ir::Instruction &inst, std::uint32_t &target,
                       std::uint32_t num_blocks,
                       std::uint64_t dyn_index) override
    {
        (void)inst;
        if (injected_ ||
            plan_.kind != models::InjectionPlan::Kind::BranchRedirect)
            return;
        if (value_count_ <= plan_.target_value_index)
            return;
        // A single-block function has no wrong block to land in; the
        // strike slides to the next branch in a bigger function.
        if (num_blocks < 2)
            return;
        std::uint32_t wrong = static_cast<std::uint32_t>(
            plan_.selector % (num_blocks - 1));
        if (wrong >= target)
            ++wrong;
        markInjected(dyn_index);
        // Wrong-path execution is divergence by definition — a replay
        // diff of this window can only come back dirty.
        diverged_ = true;
        target = wrong;
    }

    std::uint64_t
    filterMemoryOp(const ir::Instruction &inst, bool is_store,
                   ir::ObjectId object, std::uint32_t &offset,
                   std::uint64_t dyn_index) override
    {
        (void)inst;
        (void)object;
        if (injected_ ||
            plan_.kind != models::InjectionPlan::Kind::MemBus)
            return 0;
        if (value_count_ <= plan_.target_value_index)
            return 0;
        markInjected(dyn_index);
        // Selector: bit 0 picks address vs data; bits 1.. give the bit
        // index (&31 for the 32-bit word offset, 0..63 for the data
        // word). The interpreter re-validates a rewritten offset — an
        // address fault leaving the object surfaces as a runtime
        // error; an in-bounds one touches the wrong word.
        mem_fault_pending_ = true;
        const bool addr_fault = (plan_.selector & 1) != 0;
        const auto bit =
            static_cast<std::uint32_t>((plan_.selector >> 1) & 63);
        if (!is_store) {
            // Either way the loaded value is wrong; the load's own
            // filterResult propagation taints the destination.
            current_load_tainted_ = true;
        }
        if (addr_fault) {
            offset ^= 1u << (bit & 31);
            return 0;
        }
        return 1ULL << bit;
    }

    void
    onMemoryAccess(const ir::Function &func, const ir::Instruction &inst,
                   ir::ObjectId object, std::uint32_t offset, bool is_store,
                   std::uint64_t dyn_index) override
    {
        (void)func;
        (void)dyn_index;
        if (!injected_)
            return;
        if (mem_fault_pending_) {
            // This is the access the memory-bus fault just corrupted:
            // a store wrote a wrong word (or the right word to a wrong
            // place) — taint it; a corrupted load already forced
            // current_load_tainted_ in filterMemoryOp. Early-return so
            // the normal load path below can't clear the forced flag.
            mem_fault_pending_ = false;
            if (is_store)
                tainted_words_.insert({object, offset});
            return;
        }
        // With no live taint anywhere, a store can't taint a word and a
        // load can't pick taint up — both set operations are no-ops.
        if (tainted_regs_.empty() && tainted_words_.empty()) {
            if (!is_store)
                current_load_tainted_ = false;
            return;
        }
        if (is_store) {
            const bool tainted =
                inst.a().isReg() && regTainted(inst.a().reg);
            if (tainted)
                tainted_words_.insert({object, offset});
            else
                tainted_words_.erase({object, offset});
        } else {
            current_load_tainted_ =
                tainted_words_.count({object, offset}) > 0;
        }
    }

    bool
    onRuntimeError(const std::string &message,
                   std::uint64_t dyn_index) override
    {
        (void)message;
        (void)dyn_index;
        if (!injected_)
            return false; // a real program bug: surface it
        if (error_recoveries_ >= kMaxErrorRecoveries)
            return false; // crash-looping: give up on the trial
        ++error_recoveries_;
        if (!detected_) {
            if (detection_.kind ==
                models::DetectionPlan::Kind::ReplayWindow) {
                // A hard error pins the dirty region to the partial
                // window executed so far — the replay only re-runs up
                // to the crash point.
                replay_cost_ += dyn_index % detection_.window;
            }
            noteDetectionPoint();
        }
        return true; // treat as an immediately detected symptom
    }

    void
    onDetectionHandled(interp::DetectionResponse response,
                       std::uint64_t region_token) override
    {
        (void)region_token;
        if (response == interp::DetectionResponse::RolledBack) {
            rolled_back_ = true;
            // A rollback restores the checkpointed state; the corrupted
            // values are either restored or recomputed, so the taint is
            // dissolved.
            tainted_regs_.clear();
            tainted_words_.clear();
            current_load_tainted_ = false;
            diverged_ = false;
            mem_fault_pending_ = false;
            if (!sameInstance()) {
                // Detection fired after control left the faulty region
                // instance (or the fault struck unprotected code): the
                // classification is Not Recoverable no matter how the
                // run would end — Ok, Error, and InstructionLimit all
                // map there, and no further detection can fire. The
                // rolled-back state was corrupted before region entry,
                // so a golden resync could never match either; stop
                // the run instead of executing the rest of the
                // program for an already-decided outcome.
                interp_.requestTrialStop();
                return;
            }
            // From here on these hooks are pure pass-throughs:
            // detection fired already, filterResult never changes a
            // value past the injection, and the golden run has no
            // runtime errors once the state converges. That is exactly
            // the contract armGoldenResync requires — the moment the
            // live state equals a golden snapshot, the rest of the run
            // is the golden suffix. Pass-through also means the
            // per-instruction callbacks are silent no-ops, so drop
            // them from the dispatch loop entirely: the rollback
            // replay ahead is where most of the trial's instructions
            // run, and it proceeds at observer-free interpreter speed
            // (onRuntimeError stays live for the crash-loop guard).
            interp_.armGoldenResync();
            interp_.quiesceHooks();
        }
    }

    bool injected() const { return injected_; }
    bool detected() const { return detected_; }
    bool rolledBack() const { return rolled_back_; }
    /// Replayed dynamic instructions charged to this trial, saturated
    /// to the 32-bit auxiliary slot the trial store persists.
    std::uint32_t
    replayCost() const
    {
        return replay_cost_ > 0xffffffffULL
                   ? 0xffffffffu
                   : static_cast<std::uint32_t>(replay_cost_);
    }
    /// True when detection fired in the same region instance the fault
    /// struck — the paper's recoverability criterion.
    bool
    sameInstance() const
    {
        return detected_ && fault_token_ != 0 &&
               detection_token_ == fault_token_;
    }
    ir::RegionId faultRegion() const { return fault_region_; }

  private:
    void
    markInjected(std::uint64_t dyn_index)
    {
        injected_ = true;
        fault_dyn_ = dyn_index;
        fault_token_ = interp_.currentRegionToken();
        fault_region_ = interp_.currentRegionId();
        detect_at_ =
            detection_.kind == models::DetectionPlan::Kind::Latency
                ? dyn_index + detection_.latency
                // Replay checks at absolute window boundaries, so the
                // detection point does not depend on where execution
                // started — snapshot-seeked and full-prefix trials
                // agree by construction.
                : ((dyn_index / detection_.window) + 1) *
                      detection_.window;
    }

    void
    noteDetectionPoint()
    {
        detected_ = true;
        detection_token_ = interp_.currentRegionToken();
    }

    void
    taintReg(ir::RegId reg)
    {
        tainted_regs_.insert({interp_.frameDepth(), reg});
    }

    void
    untaintReg(ir::RegId reg)
    {
        tainted_regs_.erase({interp_.frameDepth(), reg});
    }

    bool
    regTainted(ir::RegId reg) const
    {
        return tainted_regs_.count({interp_.frameDepth(), reg}) > 0;
    }

    /// True when the upcoming instruction would consume a corrupted
    /// value as a branch condition or an address component — the
    /// highly visible symptoms low-cost detectors catch quickly.
    bool
    isSymptomatic(const ir::Instruction &next) const
    {
        if (tainted_regs_.empty())
            return false;
        if (next.opcode() == ir::Opcode::Br && next.a().isReg() &&
            regTainted(next.a().reg))
            return true;
        if (ir::opcodeHasAddress(next.opcode())) {
            const ir::AddrExpr &addr = next.addr();
            if (addr.isRegBase() && regTainted(addr.base_reg))
                return true;
            if (addr.offset.isReg() && regTainted(addr.offset.reg))
                return true;
        }
        return false;
    }

    static constexpr int kMaxErrorRecoveries = 3;

    interp::Interpreter &interp_;
    models::InjectionPlan plan_;
    models::DetectionPlan detection_;

    std::uint64_t value_count_ = 0;
    bool injected_ = false;
    bool detected_ = false;
    bool rolled_back_ = false;
    int error_recoveries_ = 0;
    std::uint64_t fault_dyn_ = 0;
    std::uint64_t fault_token_ = 0;
    ir::RegionId fault_region_ = ir::kInvalidRegion;
    std::uint64_t detect_at_ = 0;
    std::uint64_t detection_token_ = 0;
    std::set<std::pair<std::size_t, ir::RegId>> tainted_regs_;
    std::set<std::pair<ir::ObjectId, std::uint32_t>> tainted_words_;
    bool current_load_tainted_ = false;
    /// Sticky control-divergence flag for the replay detector: set at
    /// a branch redirect and when a tainted value is about to steer
    /// control or address memory.
    bool diverged_ = false;
    /// Handshake between filterMemoryOp (which decides the memory-bus
    /// strike) and the onMemoryAccess that immediately follows it for
    /// the same access (which taints the actually-touched word).
    bool mem_fault_pending_ = false;
    std::uint64_t replay_cost_ = 0;
};

} // namespace

FaultOutcome
classifyTrialOutcome(const TrialObservation &obs)
{
    if (!obs.injected) {
        // The run ended before reaching the target instruction — can
        // happen when an unrelated code path executes fewer value
        // instructions than the golden run. Judged by output alone.
        return obs.status == interp::RunResult::Status::Ok &&
                       obs.same_output
                   ? FaultOutcome::Benign
                   : FaultOutcome::SilentCorruption;
    }

    switch (obs.status) {
      case interp::RunResult::Status::DetectedUnrecoverable:
        return FaultOutcome::NotRecoverable;
      case interp::RunResult::Status::Error:
      case interp::RunResult::Status::InstructionLimit:
        // Crash-looping or runaway corrupted executions (the trial
        // budget cut them off): not recoverable.
        return FaultOutcome::NotRecoverable;
      case interp::RunResult::Status::Ok:
        break;
    }

    if (!obs.detected) {
        // Program finished before the detection latency elapsed.
        return obs.same_output ? FaultOutcome::Benign
                               : FaultOutcome::SilentCorruption;
    }

    if (!obs.same_instance) {
        // Detected after control left the faulty region instance (or
        // the fault struck unprotected code): the paper's
        // Not Recoverable case, regardless of how the lucky rollback
        // turned out.
        return FaultOutcome::NotRecoverable;
    }

    if (!obs.same_output)
        return FaultOutcome::RecoveryFailed;

    return obs.region_class == RegionClass::Idempotent
               ? FaultOutcome::RecoveredIdempotent
               : FaultOutcome::RecoveredCheckpoint;
}

FaultInjector::FaultInjector(const ir::Module &module,
                             const EncoreReport &report,
                             interp::EngineKind engine)
    : module_(module),
      module_hash_(fnv1a64(ir::moduleToString(module))),
      decoded_(
          std::make_shared<const interp::DecodedModule>(module, engine))
{
    for (const RegionReport &region : report.regions) {
        if (region.id == ir::kInvalidRegion)
            continue;
        if (region.id >= region_class_.size())
            region_class_.resize(region.id + 1,
                                 RegionClass::NonIdempotent);
        region_class_[region.id] = region.cls;
    }
}

RegionClass
FaultInjector::regionClassOf(ir::RegionId id) const
{
    // Ids outside the table (including kInvalidRegion) fall back to
    // NonIdempotent, as the old map lookup did for missing entries.
    return id < region_class_.size() ? region_class_[id]
                                     : RegionClass::NonIdempotent;
}

void
FaultInjector::configureSnapshots(const interp::SnapshotConfig &config)
{
    snap_config_ = config;
}

interp::SnapshotStats
FaultInjector::snapshotStats() const
{
    return snapshots_ ? snapshots_->stats() : interp::SnapshotStats{};
}

bool
FaultInjector::prepare(const std::string &entry,
                       const std::vector<std::uint64_t> &args)
{
    entry_ = entry;
    args_ = args;
    snapshots_.reset();
    interp::Interpreter interp(decoded_);
    if (snap_config_.enabled && snap_config_.stride > 0) {
        // The golden run doubles as the snapshot recording run: dirty
        // tracking observes memory deltas and the interpreter captures
        // into the store at every stride barrier. Recording only reads
        // execution state, so the golden RunResult is bit-identical to
        // a recording-free run.
        auto store =
            std::make_shared<interp::SnapshotStore>(snap_config_);
        interp.memoryRef().enableDirtyTracking(
            store->pool().page_words);
        interp.setSnapshotRecorder(store.get());
        golden_ = interp.run(entry, args);
        interp.setSnapshotRecorder(nullptr);
        interp.memoryRef().disableDirtyTracking();
        if (store->size() > 0)
            snapshots_ = std::move(store);
    } else {
        golden_ = interp.run(entry, args);
    }
    prepared_ = golden_.ok();
    if (!prepared_)
        snapshots_.reset();
    return prepared_;
}

FaultOutcome
FaultInjector::runTrial(Rng &rng, const TrialConfig &config) const
{
    std::lock_guard<std::mutex> lock(scratch_mutex_);
    if (!scratch_)
        scratch_ = std::make_unique<interp::Interpreter>(decoded_);
    return runTrial(rng, config, *scratch_);
}

FaultOutcome
FaultInjector::runTrial(Rng &rng, const TrialConfig &config,
                        interp::Interpreter &interp) const
{
    ENCORE_ASSERT(prepared_, "runTrial before a successful prepare()");
    ENCORE_ASSERT(golden_.value_instrs > 0,
                  "golden run executed no value-producing instructions");

    // Model first, detector second — for the default pair this is the
    // historical draw order (target, bit, latency), preserving
    // byte-identity with pre-registry campaigns.
    const models::FaultModel &model =
        config.model ? *config.model : *models::defaultFaultModel();
    const models::Detector &detector =
        config.detector ? *config.detector : *models::defaultDetector();
    const models::InjectionPlan plan =
        model.draw(rng, golden_.value_instrs);
    const models::DetectionPlan detection =
        detector.draw(rng, config.dmax);
    return runTrialPlanned(plan, detection, config, interp);
}

FaultOutcome
FaultInjector::runTrialAt(std::uint64_t target_value_index, int bit,
                          std::uint64_t latency,
                          const TrialConfig &config,
                          interp::Interpreter &interp) const
{
    models::InjectionPlan plan;
    plan.kind = models::InjectionPlan::Kind::RegFlip;
    plan.target_value_index = target_value_index;
    plan.xor_mask = 1ULL << bit;
    models::DetectionPlan detection;
    detection.kind = models::DetectionPlan::Kind::Latency;
    detection.latency = latency;
    return runTrialPlanned(plan, detection, config, interp);
}

FaultOutcome
FaultInjector::runTrialPlanned(const models::InjectionPlan &plan,
                               const models::DetectionPlan &detection,
                               const TrialConfig &config,
                               interp::Interpreter &interp,
                               std::uint32_t *aux) const
{
    ENCORE_ASSERT(prepared_, "runTrial before a successful prepare()");

    // Seek: the latest golden-run snapshot at-or-before the anchor.
    // Pre-injection the trial hooks are pure pass-throughs (the
    // branch/memory strike models fire only *after* the anchor value
    // instruction executes), so the trial's own prefix is
    // bit-identical to the golden run's — the restored state is
    // exactly what re-executing would produce.
    const interp::Snapshot *snap =
        snapshots_
            ? snapshots_->findAtOrBefore(plan.target_value_index)
            : nullptr;

    // Keep dirty tracking on across a worker's trials: restore() then
    // rewrites only pages dirtied since the previous restore (or whose
    // pool refs differ between the two snapshots), and the resync
    // state test skips clean shared-ref pages the same way — both drop
    // from O(live memory) to O(changed pages) per trial. Idempotent
    // after the first trial on this interpreter.
    if (snapshots_)
        interp.memoryRef().enableDirtyTracking(
            snapshots_->pool().page_words);
    else
        interp.memoryRef().disableDirtyTracking();

    // The trial rides entirely on the hook interface (including memory
    // taint via ExecHooks::onMemoryAccess) — the observer list stays
    // empty, keeping per-instruction observer dispatch off the
    // campaign hot path.
    TrialHooks hooks(interp, plan, detection,
                     snap ? snap->exec.value_count : 0);
    interp.setHooks(&hooks);
    // Trials never read RunResult::globals — output equality is checked
    // in place against the golden snapshot, saving a full copy of
    // global memory per trial.
    interp.setCaptureGlobals(false);
    // The budget counts *total* dynamic instructions including the
    // restored prefix (resumeRun restores dyn_count), so the cutoff is
    // the same whether or not the prefix was re-executed.
    interp.setMaxInstructions(static_cast<std::uint64_t>(
        static_cast<double>(golden_.dyn_instrs) *
            config.run_budget_factor +
        10'000.0));
    // The same snapshots double as resync anchors on the way *out*:
    // after a successful rollback the hooks arm a watch, and the trial
    // fast-forwards the moment its state equals a golden snapshot past
    // the injection point (see TrialHooks::onDetectionHandled).
    interp.setResyncSource(snapshots_.get(), golden_.dyn_instrs);

    const interp::RunResult result =
        snap ? interp.resumeRun(*snap, snapshots_->pool())
             : interp.run(entry_, args_);
    interp.setHooks(nullptr);
    interp.setResyncSource(nullptr, 0);

    TrialObservation obs;
    obs.status = result.status;
    obs.injected = hooks.injected();
    obs.detected = hooks.detected();
    obs.same_instance = hooks.sameInstance();
    obs.region_class = regionClassOf(hooks.faultRegion());
    // Output equality is a full global-memory compare; only legs that
    // classify by output pay for it.
    if (result.golden_resync) {
        // The run was cut short because the live state matched a
        // golden snapshot exactly: the remainder is the golden suffix
        // by determinism, so the final state — return value and global
        // memory — is the golden one. Adopt it without executing.
        obs.same_output = true;
        snapshots_->noteResync();
    } else if (obs.status == interp::RunResult::Status::Ok &&
               (!obs.injected || !obs.detected || obs.same_instance)) {
        obs.same_output =
            result.return_value == golden_.return_value &&
            interp.globalsMatch(golden_.globals);
    }
    if (aux)
        *aux = hooks.replayCost();
    return classifyTrialOutcome(obs);
}

FaultOutcome
FaultInjector::runCampaignTrial(std::uint64_t trial,
                                const CampaignConfig &config,
                                interp::Interpreter &interp) const
{
    std::uint32_t aux = 0;
    return runCampaignTrial(trial, config, interp, aux);
}

FaultOutcome
FaultInjector::runCampaignTrial(std::uint64_t trial,
                                const CampaignConfig &config,
                                interp::Interpreter &interp,
                                std::uint32_t &aux) const
{
    // Trial t draws everything — the masking coin first, then the
    // fault parameters — from its own counter-derived stream, so the
    // outcome of trial t is independent of every other trial and of
    // the thread (or process) that happens to run it. The masking coin
    // comes before the model draws, so a trial index is masked or not
    // independently of which model the campaign runs — trial indices
    // stay aligned across models.
    aux = 0;
    Rng rng = Rng::forStream(config.seed, trial);
    if (config.model_masking &&
        MaskingModel(config.masking_rate).isMasked(rng))
        return FaultOutcome::Masked;

    const models::FaultModel &model =
        config.trial.model ? *config.trial.model
                           : *models::defaultFaultModel();
    const models::Detector &detector =
        config.trial.detector ? *config.trial.detector
                              : *models::defaultDetector();
    const models::InjectionPlan plan =
        model.draw(rng, golden_.value_instrs);
    const models::DetectionPlan detection =
        detector.draw(rng, config.trial.dmax);
    return runTrialPlanned(plan, detection, config.trial, interp, &aux);
}

CampaignResult
FaultInjector::runCampaign(const CampaignConfig &config) const
{
    validateCampaignConfig(config);

    auto run_one = [&](std::uint64_t t, CampaignResult &acc,
                       interp::Interpreter &interp) {
        std::uint32_t aux = 0;
        const FaultOutcome outcome =
            runCampaignTrial(t, config, interp, aux);
        ++acc.counts[static_cast<int>(outcome)];
        ++acc.trials;
        acc.replay_cost += aux;
    };

    const std::size_t jobs = resolveJobs(config.jobs);
    if (jobs <= 1) {
        CampaignResult result;
        interp::Interpreter interp(decoded_);
        for (std::uint64_t t = 0; t < config.trials; ++t)
            run_one(t, result, interp);
        return result;
    }

    ThreadPool pool(jobs);
    // One accumulator and one pooled interpreter per worker slot,
    // merged below: no shared writes on the trial path, and each
    // worker's frames / undo logs / memory image are recycled across
    // its trials (constructed lazily so idle slots cost nothing).
    std::vector<CampaignResult> shards(pool.slotCount());
    std::vector<std::unique_ptr<interp::Interpreter>> workers(
        pool.slotCount());
    pool.parallelFor(config.trials,
                     [&](std::uint64_t t, std::size_t slot) {
                         if (!workers[slot]) {
                             workers[slot] =
                                 std::make_unique<interp::Interpreter>(
                                     decoded_);
                         }
                         run_one(t, shards[slot], *workers[slot]);
                     });

    CampaignResult result;
    for (const CampaignResult &shard : shards) {
        for (int i = 0; i < static_cast<int>(FaultOutcome::NumOutcomes);
             ++i)
            result.counts[i] += shard.counts[i];
        result.trials += shard.trials;
        result.replay_cost += shard.replay_cost;
    }
    return result;
}

} // namespace encore::fault
