/**
 * @file
 * Statistical fault injection on the instrumented interpreter.
 *
 * The fault and detection scenario of each trial comes from the
 * pluggable registry in fault/models/: the default pair reproduces the
 * paper's model (§4.2.1) — flip one random bit in the destination
 * value of one uniformly chosen value-producing dynamic instruction,
 * then fire a detection event after a uniformly distributed latency in
 * [0, Dmax] dynamic instructions. Alternative models inject multi-bit
 * flips, corrupted branch targets, or memory/address-bus faults, and
 * the replay detector checks at Dmax-wide window boundaries instead of
 * drawing a latency. Runtime symptoms (wild pointers, division by
 * zero) fire detection immediately under the analytical detector,
 * reflecting the fast symptom-based detection of ReStore/Shoestring
 * that the paper assumes for address and control faults (§4.3).
 *
 * Outcomes are judged by *execution*, not by the analytical model: a
 * trial only counts as recovered when the rollback actually ran and
 * the program finished with output identical to the golden run. A
 * detection landing in a different region instance than the fault is
 * Not Recoverable, matching the paper's criterion (s + l < n).
 *
 * Trials are mutually independent — each is a pure function of
 * (module, golden run, trial seed) — so campaigns shard them across a
 * work-stealing thread pool (CampaignConfig::jobs). Counter-based
 * per-trial seeding keeps campaign results bit-identical at any
 * thread count.
 *
 * Execution cost per trial is kept allocation-free in steady state:
 * the injector pre-decodes the instrumented module once (one immutable
 * DecodedModule shared read-only by every worker), each campaign
 * worker reuses a single Interpreter whose frames / undo logs / memory
 * storage are pooled across trials, and golden-output checking
 * compares global memory in place instead of snapshotting it.
 */
#ifndef ENCORE_FAULT_INJECTOR_H
#define ENCORE_FAULT_INJECTOR_H

#include <memory>
#include <mutex>
#include <vector>

#include "encore/pipeline.h"
#include "fault/masking.h"
#include "fault/models/fault_model.h"
#include "interp/interpreter.h"

namespace encore::fault {

enum class FaultOutcome
{
    Masked,              ///< Hardware-masked (modelled) fault.
    RecoveredIdempotent, ///< Rolled back in an idempotent region.
    RecoveredCheckpoint, ///< Rolled back in a checkpointed region.
    NotRecoverable,      ///< Detected too late / outside protection.
    RecoveryFailed,      ///< Rollback ran but the output was wrong —
                         ///< the statistical (Pmin) risk materialized.
    Benign,              ///< Never detected, output still correct.
    SilentCorruption,    ///< Never detected, output wrong (program
                         ///< ended before the latency elapsed).
    NumOutcomes,
};

std::string_view outcomeName(FaultOutcome outcome);

struct TrialConfig
{
    /// Maximum detection latency Dmax, in dynamic instructions (the
    /// replay detector uses it as its window width).
    std::uint64_t dmax = 100;
    /// Execution budget multiplier over the golden run length (runaway
    /// corrupted executions are cut off and counted unrecoverable).
    double run_budget_factor = 4.0;
    /// Fault model and detector; nullptr selects the registry defaults
    /// (reg-bit under the analytical Dmax detector — the pre-registry
    /// behaviour, byte-identical to it).
    const models::FaultModel *model = nullptr;
    const models::Detector *detector = nullptr;
};

struct CampaignConfig
{
    std::uint64_t trials = 1000;
    std::uint64_t seed = 12345;
    /// Worker threads for the campaign: 1 = sequential, 0 = all
    /// hardware threads. Trials use counter-based per-trial seeding
    /// (Rng::forStream(seed, trial)), so the aggregated result is
    /// bit-identical for every value of `jobs`.
    std::size_t jobs = 1;
    TrialConfig trial;
    double masking_rate = MaskingModel::kArm926Rate;
    /// When true, masked trials are drawn but not executed (they
    /// contribute to the Masked bucket only), matching the paper's
    /// presentation of coverage over *all* injected faults.
    bool model_masking = true;
};

/// Validates a campaign configuration at campaign entry: trials > 0,
/// masking_rate in [0, 1], run_budget_factor >= 1, dmax > 0. Invalid
/// configurations exit through support/diagnostics fatal() with a
/// message naming the offending field, instead of silently producing
/// nonsense tables (e.g. a 0-trial campaign whose every fraction is 0).
void validateCampaignConfig(const CampaignConfig &config);

struct CampaignResult
{
    std::uint64_t counts[static_cast<int>(FaultOutcome::NumOutcomes)] = {};
    std::uint64_t trials = 0;
    /// Total replayed dynamic instructions across all trials — the
    /// Dichev-style recovery-cost side of the replay detector. Always 0
    /// under the analytical detector.
    std::uint64_t replay_cost = 0;

    std::uint64_t
    count(FaultOutcome outcome) const
    {
        return counts[static_cast<int>(outcome)];
    }

    double
    fraction(FaultOutcome outcome) const
    {
        return trials ? static_cast<double>(count(outcome)) /
                            static_cast<double>(trials)
                      : 0.0;
    }

    /// Paper's headline metric: masked + recovered (benign completions
    /// count as tolerated as well).
    double
    coveredFraction() const
    {
        return fraction(FaultOutcome::Masked) +
               fraction(FaultOutcome::RecoveredIdempotent) +
               fraction(FaultOutcome::RecoveredCheckpoint) +
               fraction(FaultOutcome::Benign);
    }
};

/**
 * Everything a finished trial execution exposes to outcome
 * classification. Factoring the mapping out of runTrial keeps every
 * outcome leg unit-testable — including the ones that are unreachable
 * end-to-end under full determinism (e.g. the SilentCorruption leg of
 * the not-injected path, which requires a run that diverges from the
 * golden prefix *before* any fault was injected).
 */
struct TrialObservation
{
    interp::RunResult::Status status = interp::RunResult::Status::Ok;
    bool injected = false;
    /// Detection fired (by latency expiry or symptom).
    bool detected = false;
    /// Detection fired in the same region instance as the fault.
    bool same_instance = false;
    /// Return value and global memory match the golden run.
    bool same_output = false;
    /// Class of the region the fault struck.
    RegionClass region_class = RegionClass::NonIdempotent;
};

/// The trial outcome table (see runTrial for the execution that fills
/// a TrialObservation in). Pure; exercised directly by tests.
FaultOutcome classifyTrialOutcome(const TrialObservation &obs);

/**
 * Runs fault-injection campaigns against one instrumented module.
 */
class FaultInjector
{
  public:
    /// `report` supplies region-id → class attribution; the module must
    /// already be instrumented by the pipeline. `engine` selects the
    /// execution tier for the golden run and every trial (trial
    /// outcomes are engine-independent; the fused default is simply
    /// faster — see interp::EngineKind).
    FaultInjector(const ir::Module &module, const EncoreReport &report,
                  interp::EngineKind engine = interp::EngineKind::Fused);

    /// Selects the snapshot tier configuration for the next prepare()
    /// (snapshots are rebuilt from scratch by every prepare). Call
    /// before prepare(); a config with enabled=false (or stride 0)
    /// turns the tier off and every trial re-executes from entry.
    void configureSnapshots(const interp::SnapshotConfig &config);

    const interp::SnapshotConfig &
    snapshotConfig() const
    {
        return snap_config_;
    }

    /// True when prepare() recorded at least one snapshot.
    bool
    snapshotsActive() const
    {
        return snapshots_ && snapshots_->size() > 0;
    }

    /// Store counters (count/bytes/stride/hit-rate); all-zero when the
    /// tier is disabled.
    interp::SnapshotStats snapshotStats() const;

    /// Executes the golden (fault-free) run; must be called before
    /// trials. When the snapshot tier is enabled, the same run also
    /// records the prefix SnapshotStore that trial execution seeks
    /// into. Returns false when the program itself fails.
    bool prepare(const std::string &entry,
                 const std::vector<std::uint64_t> &args);

    /// Runs one trial on a lazily created injector-owned scratch
    /// interpreter (so single-trial callers — tests, table1 — stop
    /// paying decode-frame allocation per trial). Thread-safe after
    /// prepare(), but calls through this overload serialize on the
    /// scratch interpreter's mutex; campaign workers use the pooled
    /// overload below instead.
    FaultOutcome runTrial(Rng &rng, const TrialConfig &config) const;

    /// Runs one trial on a caller-owned interpreter (which must have
    /// been constructed over decodedModule()). Campaign workers call
    /// this with one pooled interpreter per worker so steady-state
    /// trials allocate nothing; the trial installs its own hooks and
    /// clears them again before returning.
    FaultOutcome runTrial(Rng &rng, const TrialConfig &config,
                          interp::Interpreter &interp) const;

    /// Deterministic single-trial execution with explicit fault
    /// parameters (the Rng overloads draw target/bit/latency and call
    /// this). `target_value_index` is the value-producing dynamic
    /// instruction whose destination gets `bit` flipped; detection
    /// fires `latency` dynamic instructions later (or at the first
    /// symptom). Useful for replaying one specific trial and for
    /// pinning down outcome edges in tests. When the snapshot tier is
    /// active, execution starts from the nearest snapshot at-or-before
    /// the target — bit-identical to a full run by construction.
    FaultOutcome runTrialAt(std::uint64_t target_value_index, int bit,
                            std::uint64_t latency,
                            const TrialConfig &config,
                            interp::Interpreter &interp) const;

    /// Deterministic single-trial execution from fully drawn plans —
    /// the common core every overload above funnels into. When `aux`
    /// is non-null it receives the trial's auxiliary cost counter
    /// (replayed dynamic instructions under the replay detector,
    /// saturated to 32 bits; 0 otherwise).
    FaultOutcome runTrialPlanned(const models::InjectionPlan &plan,
                                 const models::DetectionPlan &detection,
                                 const TrialConfig &config,
                                 interp::Interpreter &interp,
                                 std::uint32_t *aux = nullptr) const;

    /// Runs campaign trial `trial` — the masking coin plus (when not
    /// masked) one injected execution — on a caller-owned pooled
    /// interpreter. The outcome is a pure function of (module, golden
    /// run, config.seed, trial): all randomness comes from the
    /// counter-derived stream Rng::forStream(config.seed, trial). Both
    /// runCampaign and the durable campaign runner (src/campaign/)
    /// execute trials through this single entry point, which is what
    /// makes a resumed or sharded campaign bit-identical to an
    /// uninterrupted single-process one.
    FaultOutcome runCampaignTrial(std::uint64_t trial,
                                  const CampaignConfig &config,
                                  interp::Interpreter &interp) const;

    /// Same, with the per-trial auxiliary cost counter out-param (the
    /// durable trial store persists it next to the outcome so resumed
    /// and merged campaigns reproduce replay-cost aggregates exactly).
    FaultOutcome runCampaignTrial(std::uint64_t trial,
                                  const CampaignConfig &config,
                                  interp::Interpreter &interp,
                                  std::uint32_t &aux) const;

    /// Runs a whole campaign (including modelled masking), sharding
    /// trials across `config.jobs` threads with per-worker outcome
    /// accumulators. Per-trial seeding makes the result bit-identical
    /// regardless of thread count or schedule. Fatal on an invalid
    /// config (see validateCampaignConfig).
    CampaignResult runCampaign(const CampaignConfig &config) const;

    const interp::RunResult &golden() const { return golden_; }

    /// Identity of the prepared campaign target, used by the durable
    /// trial store to fingerprint which (module, entry, args) a store
    /// belongs to. moduleHash() is a stable hash of the instrumented
    /// module's printed form, computed once in the constructor.
    std::uint64_t moduleHash() const { return module_hash_; }
    const std::string &entry() const { return entry_; }
    const std::vector<std::uint64_t> &args() const { return args_; }

    /// The instrumented module trials run against. The campaign
    /// planner walks it to build the call graph behind its
    /// per-function instrumentation-closure fingerprints.
    const ir::Module &module() const { return module_; }

    /// The immutable pre-decoded code cache shared by every trial.
    const std::shared_ptr<const interp::DecodedModule> &
    decodedModule() const
    {
        return decoded_;
    }

  private:
    RegionClass regionClassOf(ir::RegionId id) const;

    const ir::Module &module_;
    std::uint64_t module_hash_ = 0;
    /// Built once in the constructor (the module is already in its
    /// final instrumented form there) and never mutated afterwards.
    std::shared_ptr<const interp::DecodedModule> decoded_;
    /// Region-id → class lookup, flat-indexed by id: this sits on the
    /// per-trial hot path, so no tree walk.
    std::vector<RegionClass> region_class_;
    std::string entry_;
    std::vector<std::uint64_t> args_;
    interp::RunResult golden_;
    bool prepared_ = false;

    /// Snapshot tier: configured before prepare(), recorded during it,
    /// then shared read-only by every trial thread. shared_ptr so the
    /// store outlives re-prepares already-running readers might race
    /// (in practice prepare() happens once, before trials start).
    interp::SnapshotConfig snap_config_;
    std::shared_ptr<interp::SnapshotStore> snapshots_;

    /// Scratch interpreter for the convenience runTrial overload;
    /// lazily created, guarded by its mutex.
    mutable std::mutex scratch_mutex_;
    mutable std::unique_ptr<interp::Interpreter> scratch_;
};

} // namespace encore::fault

#endif // ENCORE_FAULT_INJECTOR_H
