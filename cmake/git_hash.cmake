# Build-time git-hash capture (invoked via cmake -P from the custom
# command in src/support/CMakeLists.txt).
#
# Writes ${OUT} — a tiny .cc defining encore::detail::kGitHash — from
# `git rev-parse` at BUILD time, so an incremental rebuild after new
# commits reports the new revision (the old configure-time bake could
# go stale until the next cmake run). Write-if-changed: when the hash
# is unchanged the file's timestamp is left alone and nothing
# recompiles or relinks.
#
# Expects: SOURCE_DIR (repo root), OUT (generated .cc path).

execute_process(
    COMMAND git rev-parse --short=12 HEAD
    WORKING_DIRECTORY ${SOURCE_DIR}
    OUTPUT_VARIABLE GIT_HASH
    OUTPUT_STRIP_TRAILING_WHITESPACE
    ERROR_QUIET
    RESULT_VARIABLE GIT_RC)
if(NOT GIT_RC EQUAL 0 OR GIT_HASH STREQUAL "")
    set(GIT_HASH "unknown")
endif()

set(CONTENT "// Generated at build time by cmake/git_hash.cmake — do not edit.
namespace encore::detail {
extern const char *const kGitHash;
const char *const kGitHash = \"${GIT_HASH}\";
} // namespace encore::detail
")

set(OLD "")
if(EXISTS "${OUT}")
    file(READ "${OUT}" OLD)
endif()
if(NOT OLD STREQUAL CONTENT)
    file(WRITE "${OUT}" "${CONTENT}")
endif()
